//! The RLR victim scan as a standalone, differential-testable kernel.
//!
//! [`RlrPolicy::select_victim`](crate::RlrPolicy) reduces a set to the
//! minimum of a packed per-way key:
//!
//! ```text
//! bits [54..64]  priority  (≤ 1023, enforced by RlrConfig::validate)
//! bits [16..54]  staleness (clock − stamp, saturated to 38 bits)
//! bits [ 0..16]  way index
//! ```
//!
//! Lowest priority loses, most-recent (smallest staleness) breaks priority
//! ties, and the way index in the low bits makes every key unique — so the
//! scan is an argmin over unique u64 keys, and `min` over them is an
//! associative, commutative fold whose result cannot depend on reduction
//! order. That order-insensitivity is what licenses the lane backend
//! ([`scan_lanes`]): four independent accumulator lanes consume the ways
//! in stripes, then a horizontal min merges the lanes; any non-multiple-of-
//! four remainder folds in scalarly. [`scan_scalar`] is the one-accumulator
//! reference, kept compiled in every build for the differential property
//! suite (`tests/simd_scan_equivalence.rs`).
//!
//! [`scan`] picks the backend at build time: lanes by default, the scalar
//! reference under the `scalar-scan` cargo feature (which also switches
//! cache-sim's own lane scans). Both backends are bit-identical by
//! construction and oracle-checked twice per commit by `scripts/ci.sh`.

use crate::packed::LineMeta;

/// Accumulator lanes in the vectorized scan.
pub const LANES: usize = 4;

/// Width mask of the staleness field: 38 bits cover ~2.7×10¹¹ set accesses
/// before the saturating clamp could fire.
pub const REC_MASK: u64 = (1 << 38) - 1;

/// Loop-invariant inputs of one victim scan, hoisted by the caller.
#[derive(Clone, Copy, Debug)]
pub struct ScanParams {
    /// Current value of the configured age clock (set accesses or epochs).
    pub now: u64,
    /// Current per-set access clock (exact-recency staleness).
    pub clock: u64,
    /// Predicted reuse distance, in age units.
    pub rd: u64,
    /// Saturation bound of the age counter.
    pub max_age: u64,
    /// Weight of the age term (`8` in the paper's P_line).
    pub age_weight: u32,
    /// Whether the type term (penalize unreused prefetches) is active.
    pub use_type: bool,
    /// Whether the hit term is active.
    pub use_hit: bool,
    /// Exact recency: staleness is `clock − access stamp` rather than the
    /// clamped age.
    pub exact_recency: bool,
}

/// Per-way inputs: parallel slices, one element per way.
#[derive(Clone, Copy, Debug)]
pub struct ScanWays<'a> {
    /// Stamp of the last touch in the configured age unit.
    pub age_stamps: &'a [u64],
    /// Stamp of the last touch on the per-set access clock.
    pub rec_stamps: &'a [u64],
    /// Packed hit/type metadata.
    pub metas: &'a [LineMeta],
    /// Core that inserted or last touched each way; consulted only when
    /// `core_rank` is non-empty. May be empty otherwise.
    pub cores: &'a [u8],
    /// Per-core priority levels; empty disables the P_core term.
    pub core_rank: &'a [u32],
}

/// What a scan found: the minimum packed key (victim way in the low 16
/// bits) and whether any way aged past RD (the bypass predicate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Minimum `(priority | staleness | way)` key over the set.
    pub best_key: u64,
    /// `true` when at least one way's age exceeded RD.
    pub any_past_rd: bool,
}

impl ScanOutcome {
    /// The victim way encoded in the winning key.
    #[must_use]
    pub fn victim(self) -> u16 {
        (self.best_key & 0xFFFF) as u16
    }
}

/// Key and bypass flag for a single way — the shared per-element kernel of
/// both backends, so they can only differ in reduction schedule.
#[inline(always)]
fn way_key(p: &ScanParams, ways: &ScanWays, way: usize) -> (u64, bool) {
    let age = (p.now - ways.age_stamps[way]).min(p.max_age);
    let meta = ways.metas[way];
    let mut prio = u32::from(age <= p.rd) * p.age_weight
        + u32::from(p.use_type && !meta.last_prefetch())
        + u32::from(p.use_hit && meta.hit_count() > 0);
    if !ways.core_rank.is_empty() {
        let core = ways.cores[way];
        prio += ways.core_rank.get(usize::from(core)).copied().unwrap_or(0);
    }
    let staleness = if p.exact_recency { p.clock - ways.rec_stamps[way] } else { age };
    debug_assert!(prio < 1024, "priority must fit the key's 10-bit field");
    let key = (u64::from(prio) << 54) | (staleness.min(REC_MASK) << 16) | way as u64;
    (key, age > p.rd)
}

fn check_shape(ways: &ScanWays) -> usize {
    let n = ways.age_stamps.len();
    assert!(n > 0, "victim scan over an empty set");
    assert!(n <= 0xFFFF, "way index must fit the key's 16-bit field");
    assert_eq!(ways.rec_stamps.len(), n, "recency stamps must cover every way");
    assert_eq!(ways.metas.len(), n, "metadata must cover every way");
    if !ways.core_rank.is_empty() {
        assert_eq!(ways.cores.len(), n, "core ids must cover every way");
    }
    n
}

/// One-accumulator reference scan, compiled in every build as the oracle
/// for the lane backend.
pub fn scan_scalar(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
    let n = check_shape(ways);
    let mut best_key = u64::MAX;
    let mut any_past_rd = false;
    for way in 0..n {
        let (key, past_rd) = way_key(params, ways, way);
        best_key = best_key.min(key);
        any_past_rd |= past_rd;
    }
    ScanOutcome { best_key, any_past_rd }
}

/// Lane-parallel scan: [`LANES`] independent accumulators consume the ways
/// in stripes, the remainder folds in scalarly, and a horizontal min/or
/// merges the lanes. Identical result to [`scan_scalar`] for any input —
/// the keys are unique, so the min is reduction-order-insensitive, and the
/// bypass flag is an `or`, which is too.
pub fn scan_lanes(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
    if ways.core_rank.is_empty() {
        dispatch::<CORE_OFF>(params, ways)
    } else if ways.core_rank.len() <= 8 && ways.core_rank.iter().all(|&r| r <= 0xFF) {
        // The common multicore shape (≤ 8 cores, tiny rank values): the
        // whole rank table packs into one u64 and the per-way lookup
        // becomes a variable shift, which vectorizes where a gather
        // cannot.
        dispatch::<CORE_PACKED>(params, ways)
    } else {
        dispatch::<CORE_GATHER>(params, ways)
    }
}

/// P_core is off ([`ScanWays::core_rank`] empty).
const CORE_OFF: u8 = 0;
/// P_core reads a rank table packed into one u64, one byte per core.
const CORE_PACKED: u8 = 1;
/// P_core falls back to an indexed load per way (rank table too big or
/// rank values too large to pack).
const CORE_GATHER: u8 = 2;

/// Routes one scan to the widest kernel this machine can run. Every
/// candidate compiles the *same* `#[inline(always)]` body
/// ([`scan_lanes_impl`]) — the `#[target_feature]` wrappers only let the
/// compiler use wider registers for it — so the result is bit-identical
/// across targets by construction, and the differential wall only ever
/// has to compare two schedules (scalar vs lanes), not one per ISA.
#[inline]
fn dispatch<const MODE: u8>(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
    #[cfg(target_arch = "x86_64")]
    {
        // Detection results are cached by std; steady state is one
        // predictable load+branch per scan. The hand-vectorized kernel
        // does not implement the (rare) gather fallback — that shape
        // stays on the portable body.
        if MODE != CORE_GATHER
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: feature presence was just verified at runtime.
            return unsafe { avx512::scan::<MODE>(params, ways) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence was just verified at runtime.
            return unsafe { scan_lanes_avx2::<MODE>(params, ways) };
        }
    }
    scan_lanes_impl::<MODE>(params, ways)
}

/// [`scan_lanes_impl`] compiled with 256-bit vectors available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan_lanes_avx2<const MODE: u8>(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
    scan_lanes_impl::<MODE>(params, ways)
}

/// The hand-vectorized stripe kernel: AVX-512VL gives unsigned 64-bit
/// min (`vpminuq`), unsigned 64-bit compares into mask registers, and
/// per-lane variable shifts — everything the packed-key argmin needs as
/// single instructions over 4×u64 lanes. Autovectorization never fires
/// on the portable body (the mix of u8 widening, bool selects, and u64
/// min defeats SLP), so this path writes the lanes explicitly.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    use super::{
        way_key, ScanOutcome, ScanParams, ScanWays, CORE_PACKED, LANES, REC_MASK,
    };
    use crate::packed::LineMeta;

    /// Lane-by-lane identical to [`super::scan_lanes_impl`]: the same
    /// terms in the same widths, only expressed as explicit 256-bit ops.
    ///
    /// # Safety
    /// Caller must have verified `avx512f` and `avx512vl` at runtime.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn scan<const MODE: u8>(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
        let n = super::check_shape(ways);
        let p = *params;
        let splat = |v: u64| _mm256_set1_epi64x(v as i64);
        let now = splat(p.now);
        let max_age = splat(p.max_age);
        let rd = splat(p.rd);
        let weight = splat(u64::from(p.age_weight));
        let type_on = splat(u64::from(p.use_type));
        let hit_on = splat(u64::from(p.use_hit));
        let clock = splat(p.clock);
        // All-ones selects the exact recency clock, all-zeros the age.
        let exact = splat((p.exact_recency as u64).wrapping_neg());
        let rec_mask = splat(REC_MASK);
        let pf_bit = splat(u64::from(LineMeta::PREFETCH_BIT));
        let hit_mask = splat(u64::from(LineMeta::HIT_MASK));
        // CORE_PACKED: the rank table as one u64, byte `c` = core c's rank.
        let rank_table = splat(
            ways.core_rank
                .iter()
                .enumerate()
                .fold(0u64, |t, (c, &r)| t | (u64::from(r) << (8 * c))),
        );
        let rank_len = splat(ways.core_rank.len() as u64);

        let mut best = splat(u64::MAX);
        let mut past: __mmask8 = 0;
        let mut idx = _mm256_set_epi64x(3, 2, 1, 0);
        let step = splat(LANES as u64);
        let mut way = 0;
        while way + LANES <= n {
            // SAFETY: `check_shape` proved every slice holds `n` elements
            // and `way + LANES <= n`, so all four-lane loads are in
            // bounds; LineMeta is `repr(transparent)` over u8.
            let age_stamps =
                _mm256_loadu_si256(ways.age_stamps.as_ptr().add(way).cast::<__m256i>());
            let rec_stamps =
                _mm256_loadu_si256(ways.rec_stamps.as_ptr().add(way).cast::<__m256i>());
            let meta_bytes = ways.metas.as_ptr().add(way).cast::<u32>().read_unaligned();
            let metas = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(meta_bytes as i32));

            let age = _mm256_min_epu64(_mm256_sub_epi64(now, age_stamps), max_age);
            // P_age: + weight where age ≤ RD.
            let le_rd = _mm256_cmple_epu64_mask(age, rd);
            let mut prio = _mm256_maskz_mov_epi64(le_rd, weight);
            // P_type: + use_type where the last access was not a prefetch.
            let pf_clear = _mm256_testn_epi64_mask(metas, pf_bit);
            prio = _mm256_add_epi64(prio, _mm256_maskz_mov_epi64(pf_clear, type_on));
            // P_hit: + use_hit where the hit counter is non-zero.
            let hit_nz = _mm256_test_epi64_mask(metas, hit_mask);
            prio = _mm256_add_epi64(prio, _mm256_maskz_mov_epi64(hit_nz, hit_on));
            if MODE == CORE_PACKED {
                let core_bytes = ways.cores.as_ptr().add(way).cast::<u32>().read_unaligned();
                let cores = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(core_bytes as i32));
                // rank = byte `core` of the table, 0 when out of range.
                let keep = _mm256_cmplt_epu64_mask(cores, rank_len);
                let shift = _mm256_slli_epi64(_mm256_and_si256(cores, splat(7)), 3);
                let rank =
                    _mm256_and_si256(_mm256_srlv_epi64(rank_table, shift), splat(0xFF));
                prio = _mm256_add_epi64(prio, _mm256_maskz_mov_epi64(keep, rank));
            }
            // staleness = exact ? clock − rec_stamp : age, clamped.
            let rec = _mm256_sub_epi64(clock, rec_stamps);
            let staleness = _mm256_or_si256(
                _mm256_and_si256(exact, rec),
                _mm256_andnot_si256(exact, age),
            );
            let staleness = _mm256_min_epu64(staleness, rec_mask);
            let key = _mm256_or_si256(
                _mm256_or_si256(_mm256_slli_epi64(prio, 54), _mm256_slli_epi64(staleness, 16)),
                idx,
            );
            best = _mm256_min_epu64(best, key);
            past |= _mm256_cmpgt_epu64_mask(age, rd);
            idx = _mm256_add_epi64(idx, step);
            way += LANES;
        }

        let mut lanes = [0u64; LANES];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), best);
        let mut best_key = lanes.into_iter().fold(u64::MAX, u64::min);
        let mut any_past_rd = past != 0;
        while way < n {
            let (key, past_rd) = way_key(params, ways, way);
            best_key = best_key.min(key);
            any_past_rd |= past_rd;
            way += 1;
        }
        ScanOutcome { best_key, any_past_rd }
    }
}

/// The lane kernel, monomorphized on the P_core mode. The stripe body is
/// branch-free u64 arithmetic over fixed-size array views, so the compiler
/// sees no bounds checks and no data-dependent control flow; every term
/// matches [`way_key`] bit for bit (priority sums stay < 1024, so widening
/// the math to u64 cannot change a result, and in `CORE_PACKED` mode the
/// byte extracted by the shift equals the table entry the gather would
/// load, with out-of-range cores masked to the same 0).
#[inline(always)]
fn scan_lanes_impl<const MODE: u8>(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
    let n = check_shape(ways);
    let p = *params;
    let weight = u64::from(p.age_weight);
    let type_on = u64::from(p.use_type);
    let hit_on = u64::from(p.use_hit);
    // All-ones when staleness is the exact recency clock, all-zeros when it
    // reuses the clamped age — a branchless select below.
    let exact = (p.exact_recency as u64).wrapping_neg();
    // CORE_PACKED: the whole rank table as one u64, byte `c` holding
    // core `c`'s rank.
    let rank_table = if MODE == CORE_PACKED {
        ways.core_rank.iter().enumerate().fold(0u64, |t, (c, &r)| t | (u64::from(r) << (8 * c)))
    } else {
        0
    };
    let rank_len = ways.core_rank.len() as u64;
    let mut best = [u64::MAX; LANES];
    let mut past = [0u64; LANES];
    let mut way = 0;
    while way + LANES <= n {
        let stripe = way..way + LANES;
        let age_s: &[u64; LANES] = ways.age_stamps[stripe.clone()].try_into().expect("stripe");
        let rec_s: &[u64; LANES] = ways.rec_stamps[stripe.clone()].try_into().expect("stripe");
        let metas: &[LineMeta; LANES] = ways.metas[stripe.clone()].try_into().expect("stripe");
        let cores: &[u8; LANES] = if MODE == CORE_OFF {
            &[0; LANES]
        } else {
            ways.cores[stripe.clone()].try_into().expect("stripe")
        };
        for lane in 0..LANES {
            let age = (p.now - age_s[lane]).min(p.max_age);
            let meta = metas[lane];
            let mut prio = u64::from(age <= p.rd) * weight
                + (type_on & u64::from(!meta.last_prefetch()))
                + (hit_on & u64::from(meta.hit_count() > 0));
            if MODE == CORE_PACKED {
                let core = u64::from(cores[lane]);
                let keep = ((core < rank_len) as u64).wrapping_neg();
                prio += (rank_table >> ((core & 7) * 8)) & 0xFF & keep;
            } else if MODE == CORE_GATHER {
                let core = usize::from(cores[lane]);
                prio += u64::from(ways.core_rank.get(core).copied().unwrap_or(0));
            }
            // wrapping_sub: the difference is only meaningful (and only
            // kept) when `exact` selects it, and then rec ≤ clock holds.
            let staleness = (exact & p.clock.wrapping_sub(rec_s[lane])) | (!exact & age);
            let key = (prio << 54) | (staleness.min(REC_MASK) << 16) | (way + lane) as u64;
            best[lane] = best[lane].min(key);
            past[lane] |= u64::from(age > p.rd);
        }
        way += LANES;
    }
    let mut best_key = best.into_iter().fold(u64::MAX, u64::min);
    let mut any_past_rd = past.into_iter().fold(0, |a, b| a | b) != 0;
    while way < n {
        let (key, past_rd) = way_key(params, ways, way);
        best_key = best_key.min(key);
        any_past_rd |= past_rd;
        way += 1;
    }
    ScanOutcome { best_key, any_past_rd }
}

/// The build-selected backend: [`scan_lanes`] by default, [`scan_scalar`]
/// under the `scalar-scan` feature.
#[inline]
pub fn scan(params: &ScanParams, ways: &ScanWays) -> ScanOutcome {
    if cfg!(feature = "scalar-scan") {
        scan_scalar(params, ways)
    } else {
        scan_lanes(params, ways)
    }
}

/// Validates a way mask for the masked scan: at least one eligible way,
/// and a set narrow enough for the 32-bit mask to cover.
fn check_mask(mask: u32, n: usize) -> u32 {
    assert!(n <= 32, "masked scans cover at most 32 ways");
    let set_bits = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mask = mask & set_bits;
    assert!(mask != 0, "masked scan with no eligible way");
    mask
}

/// One-accumulator reference for the masked scan: identical to
/// [`scan_scalar`] over the subset of ways whose bit is set in `mask`.
/// Ineligible ways contribute nothing — neither a key nor a bypass vote —
/// so a partitioned victim scan can never name a way outside its mask.
pub fn scan_masked_scalar(params: &ScanParams, ways: &ScanWays, mask: u32) -> ScanOutcome {
    let n = check_shape(ways);
    let mask = check_mask(mask, n);
    let mut best_key = u64::MAX;
    let mut any_past_rd = false;
    for way in 0..n {
        if mask & (1 << way) == 0 {
            continue;
        }
        let (key, past_rd) = way_key(params, ways, way);
        best_key = best_key.min(key);
        any_past_rd |= past_rd;
    }
    ScanOutcome { best_key, any_past_rd }
}

/// Lane-parallel masked scan: the same stripe kernel as [`scan_lanes`],
/// with ineligible lanes forced to `u64::MAX` keys (so they can never win
/// the argmin) and their bypass votes suppressed. The mask select is
/// branch-free — a per-lane all-ones/all-zeros keep word — so the stripe
/// body stays straight-line and reaches 256-bit registers through the same
/// `#[target_feature]` wrapper as the unmasked kernel.
///
/// Ineligible ways' stamps are still *read* (then discarded), which is
/// sound because every stamp in a set is written from the same per-set
/// clock and therefore never exceeds `now`/`clock`.
pub fn scan_masked_lanes(params: &ScanParams, ways: &ScanWays, mask: u32) -> ScanOutcome {
    if ways.core_rank.is_empty() {
        dispatch_masked::<CORE_OFF>(params, ways, mask)
    } else if ways.core_rank.len() <= 8 && ways.core_rank.iter().all(|&r| r <= 0xFF) {
        dispatch_masked::<CORE_PACKED>(params, ways, mask)
    } else {
        dispatch_masked::<CORE_GATHER>(params, ways, mask)
    }
}

#[inline]
fn dispatch_masked<const MODE: u8>(params: &ScanParams, ways: &ScanWays, mask: u32) -> ScanOutcome {
    #[cfg(target_arch = "x86_64")]
    {
        if MODE != CORE_GATHER && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence was just verified at runtime.
            return unsafe { scan_masked_lanes_avx2::<MODE>(params, ways, mask) };
        }
    }
    scan_masked_lanes_impl::<MODE>(params, ways, mask)
}

/// [`scan_masked_lanes_impl`] compiled with 256-bit vectors available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan_masked_lanes_avx2<const MODE: u8>(
    params: &ScanParams,
    ways: &ScanWays,
    mask: u32,
) -> ScanOutcome {
    scan_masked_lanes_impl::<MODE>(params, ways, mask)
}

/// The masked stripe kernel: [`scan_lanes_impl`] plus a per-lane keep word
/// derived from the mask bit. `key | !keep` is `key` for eligible lanes and
/// `u64::MAX` for ineligible ones, and `past & keep` drops ineligible
/// bypass votes — both branch-free.
#[inline(always)]
fn scan_masked_lanes_impl<const MODE: u8>(
    params: &ScanParams,
    ways: &ScanWays,
    mask: u32,
) -> ScanOutcome {
    let n = check_shape(ways);
    let mask = check_mask(mask, n);
    let p = *params;
    let weight = u64::from(p.age_weight);
    let type_on = u64::from(p.use_type);
    let hit_on = u64::from(p.use_hit);
    let exact = (p.exact_recency as u64).wrapping_neg();
    let rank_table = if MODE == CORE_PACKED {
        ways.core_rank.iter().enumerate().fold(0u64, |t, (c, &r)| t | (u64::from(r) << (8 * c)))
    } else {
        0
    };
    let rank_len = ways.core_rank.len() as u64;
    let mut best = [u64::MAX; LANES];
    let mut past = [0u64; LANES];
    let mut way = 0;
    while way + LANES <= n {
        let stripe = way..way + LANES;
        let age_s: &[u64; LANES] = ways.age_stamps[stripe.clone()].try_into().expect("stripe");
        let rec_s: &[u64; LANES] = ways.rec_stamps[stripe.clone()].try_into().expect("stripe");
        let metas: &[LineMeta; LANES] = ways.metas[stripe.clone()].try_into().expect("stripe");
        let cores: &[u8; LANES] = if MODE == CORE_OFF {
            &[0; LANES]
        } else {
            ways.cores[stripe.clone()].try_into().expect("stripe")
        };
        for lane in 0..LANES {
            let keep = (u64::from((mask >> (way + lane)) & 1)).wrapping_neg();
            let age = (p.now - age_s[lane]).min(p.max_age);
            let meta = metas[lane];
            let mut prio = u64::from(age <= p.rd) * weight
                + (type_on & u64::from(!meta.last_prefetch()))
                + (hit_on & u64::from(meta.hit_count() > 0));
            if MODE == CORE_PACKED {
                let core = u64::from(cores[lane]);
                let in_table = ((core < rank_len) as u64).wrapping_neg();
                prio += (rank_table >> ((core & 7) * 8)) & 0xFF & in_table;
            } else if MODE == CORE_GATHER {
                let core = usize::from(cores[lane]);
                prio += u64::from(ways.core_rank.get(core).copied().unwrap_or(0));
            }
            let staleness = (exact & p.clock.wrapping_sub(rec_s[lane])) | (!exact & age);
            let key = (prio << 54) | (staleness.min(REC_MASK) << 16) | (way + lane) as u64;
            best[lane] = best[lane].min(key | !keep);
            past[lane] |= u64::from(age > p.rd) & keep;
        }
        way += LANES;
    }
    let mut best_key = best.into_iter().fold(u64::MAX, u64::min);
    let mut any_past_rd = past.into_iter().fold(0, |a, b| a | b) != 0;
    while way < n {
        if mask & (1 << way) != 0 {
            let (key, past_rd) = way_key(params, ways, way);
            best_key = best_key.min(key);
            any_past_rd |= past_rd;
        }
        way += 1;
    }
    ScanOutcome { best_key, any_past_rd }
}

/// The build-selected masked backend: [`scan_masked_lanes`] by default,
/// [`scan_masked_scalar`] under the `scalar-scan` feature — the same
/// selection rule as [`scan`], so the dual-build differential walls cover
/// the masked kernel too.
#[inline]
pub fn scan_masked(params: &ScanParams, ways: &ScanWays, mask: u32) -> ScanOutcome {
    if cfg!(feature = "scalar-scan") {
        scan_masked_scalar(params, ways, mask)
    } else {
        scan_masked_lanes(params, ways, mask)
    }
}

/// `true` when [`scan`] resolves to the lane backend in this build.
#[must_use]
pub const fn lanes_enabled() -> bool {
    !cfg!(feature = "scalar-scan")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScanParams {
        ScanParams {
            now: 10,
            clock: 10,
            rd: 4,
            max_age: 31,
            age_weight: 8,
            use_type: true,
            use_hit: true,
            exact_recency: true,
        }
    }

    #[test]
    fn backends_agree_on_a_mixed_set() {
        let age_stamps = [0, 7, 9, 3, 10, 10, 2];
        let rec_stamps = [1, 7, 9, 3, 10, 10, 2];
        let metas: Vec<LineMeta> = [(0u8, false), (1, false), (0, true), (2, false), (0, true), (1, false), (0, false)]
            .iter()
            .map(|&(hits, pf)| {
                let mut m = LineMeta::filled(pf, !pf);
                m.set_hit_count(hits);
                m
            })
            .collect();
        let cores = [0u8, 1, 2, 3, 0, 1, 9];
        let core_rank = [3u32, 2, 1, 0];
        let ways = ScanWays {
            age_stamps: &age_stamps,
            rec_stamps: &rec_stamps,
            metas: &metas,
            cores: &cores,
            core_rank: &core_rank,
        };
        let p = params();
        assert_eq!(scan_scalar(&p, &ways), scan_lanes(&p, &ways));
        assert_eq!(scan(&p, &ways), scan_scalar(&p, &ways));
    }

    #[test]
    fn masked_backends_agree_and_stay_inside_the_mask() {
        let age_stamps = [0u64, 7, 9, 3, 10, 10, 2, 5, 1];
        let rec_stamps = [1u64, 7, 9, 3, 10, 10, 2, 5, 1];
        let metas: Vec<LineMeta> = (0..9)
            .map(|i| {
                let mut m = LineMeta::filled(i % 3 == 0, i % 3 != 0);
                m.set_hit_count((i % 2) as u8);
                m
            })
            .collect();
        let cores = [0u8, 1, 2, 0, 1, 2, 0, 1, 2];
        let core_rank = [2u32, 1, 0];
        let ways = ScanWays {
            age_stamps: &age_stamps,
            rec_stamps: &rec_stamps,
            metas: &metas,
            cores: &cores,
            core_rank: &core_rank,
        };
        let p = params();
        for mask in 1u32..(1 << 9) {
            let scalar = scan_masked_scalar(&p, &ways, mask);
            let lanes = scan_masked_lanes(&p, &ways, mask);
            assert_eq!(scalar, lanes, "mask {mask:#b}");
            assert!(mask & (1 << scalar.victim()) != 0, "victim outside mask {mask:#b}");
        }
    }

    #[test]
    fn full_mask_matches_the_unmasked_scan() {
        let age_stamps = [0u64, 7, 9, 3, 10, 10, 2];
        let metas = vec![LineMeta::filled(false, true); 7];
        let ways = ScanWays {
            age_stamps: &age_stamps,
            rec_stamps: &age_stamps,
            metas: &metas,
            cores: &[],
            core_rank: &[],
        };
        let p = params();
        assert_eq!(scan_masked(&p, &ways, u32::MAX), scan(&p, &ways));
    }

    #[test]
    #[should_panic(expected = "no eligible way")]
    fn empty_mask_is_rejected() {
        let age_stamps = [0u64; 4];
        let metas = vec![LineMeta::filled(false, true); 4];
        let ways = ScanWays {
            age_stamps: &age_stamps,
            rec_stamps: &age_stamps,
            metas: &metas,
            cores: &[],
            core_rank: &[],
        };
        scan_masked_scalar(&params(), &ways, 0xF0);
    }

    #[test]
    fn full_tie_picks_the_lowest_way() {
        let age_stamps = [5u64; 6];
        let metas = vec![LineMeta::filled(false, true); 6];
        let ways = ScanWays {
            age_stamps: &age_stamps,
            rec_stamps: &age_stamps,
            metas: &metas,
            cores: &[],
            core_rank: &[],
        };
        let p = params();
        assert_eq!(scan_lanes(&p, &ways).victim(), 0);
        assert_eq!(scan_scalar(&p, &ways).victim(), 0);
    }
}
