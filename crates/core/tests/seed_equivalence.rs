//! Differential wall for the RLR policy itself: the packed, single-scan
//! [`RlrPolicy`] against the frozen seed implementation
//! ([`rlr::SeedRlrPolicy`]: three metadata arrays, triple age
//! recomputation). Both ride the same [`ReferenceCache`], so any
//! divergence is the policy's — not the cache's.

use cache_sim::{Access, AccessKind, CacheConfig, ReferenceCache};
use rlr::{RlrConfig, RlrPolicy, SeedRlrPolicy};
use simrng::prop::{check, Config};
use simrng::{prop_assert_eq, Rng, SimRng};

fn geometry() -> CacheConfig {
    CacheConfig { sets: 8, ways: 4, latency: 20 }
}

fn stream(seed: u64, len: usize) -> Vec<Access> {
    let cfg = geometry();
    let mut rng = SimRng::seed_from_u64(seed);
    let lines = u64::from(cfg.sets) * u64::from(cfg.ways) * 4;
    (0..len)
        .map(|seq| {
            let kind = match rng.gen_range(0..10u64) {
                0..=5 => AccessKind::Load,
                6..=7 => AccessKind::Rfo,
                8 => AccessKind::Prefetch,
                _ => AccessKind::Writeback,
            };
            Access {
                pc: 0x400 + rng.gen_range(0..16u64) * 4,
                addr: rng.gen_range(0..lines) << 6,
                kind,
                core: rng.gen_range(0..4u64) as u8,
                seq: seq as u64,
            }
        })
        .collect()
}

fn variants() -> [(&'static str, RlrConfig); 4] {
    let mut bypass = RlrConfig::optimized();
    bypass.bypass = true;
    [
        ("optimized", RlrConfig::optimized()),
        ("unoptimized", RlrConfig::unoptimized()),
        ("multicore", RlrConfig::multicore(4)),
        ("bypass", bypass),
    ]
}

#[test]
fn packed_policy_matches_seed_policy_on_long_streams() {
    let cfg = geometry();
    let accesses = stream(0x5EED_0001, 30_000);
    for (label, rlr_cfg) in variants() {
        let mut seed =
            ReferenceCache::new("seed", cfg, Box::new(SeedRlrPolicy::with_config(rlr_cfg, &cfg)));
        let mut packed =
            ReferenceCache::new("packed", cfg, Box::new(RlrPolicy::with_config(rlr_cfg, &cfg)));
        if rlr_cfg.bypass {
            seed.set_allow_bypass(true);
            packed.set_allow_bypass(true);
        }
        for (i, access) in accesses.iter().enumerate() {
            let a = seed.access(access);
            let b = packed.access(access);
            assert_eq!(a, b, "[{label}] diverged at access {i} ({access:?})");
        }
        assert_eq!(seed.stats(), packed.stats(), "[{label}] stats diverged");
    }
}

#[test]
fn packed_policy_matches_seed_policy_on_random_short_streams() {
    let cfg = geometry();
    check(
        "packed_policy_matches_seed_policy_on_random_short_streams",
        Config::with_cases(24),
        |rng| stream(rng.gen_range(0..u64::MAX / 2), rng.gen_range(1usize..800)),
        |accesses| {
            for (label, rlr_cfg) in variants() {
                let mut seed = ReferenceCache::new(
                    "seed",
                    cfg,
                    Box::new(SeedRlrPolicy::with_config(rlr_cfg, &cfg)),
                );
                let mut packed = ReferenceCache::new(
                    "packed",
                    cfg,
                    Box::new(RlrPolicy::with_config(rlr_cfg, &cfg)),
                );
                for (i, access) in accesses.iter().enumerate() {
                    let a = seed.access(access);
                    let b = packed.access(access);
                    prop_assert_eq!(a, b, "[{}] diverged at access {}", label, i);
                }
            }
            Ok(())
        },
    );
}
