//! Property-based invariants of the RLR policy under arbitrary access
//! sequences, on the in-tree `simrng::prop` harness.

use cache_sim::{Access, AccessKind, CacheConfig, SetAssocCache};
use rlr::{RlrConfig, RlrPolicy};
use simrng::prop::{check, Config};
use simrng::{prop_assert, prop_assert_eq, Rng, SimRng};

fn kind_of(tag: u8) -> AccessKind {
    match tag % 4 {
        0 => AccessKind::Load,
        1 => AccessKind::Rfo,
        2 => AccessKind::Prefetch,
        _ => AccessKind::Writeback,
    }
}

fn line_tag_seq(
    rng: &mut SimRng,
    lines: u16,
    tags: u8,
    len: std::ops::Range<usize>,
) -> Vec<(u16, u8)> {
    let n = rng.gen_range(len);
    (0..n).map(|_| (rng.gen_range(0..lines), rng.gen_range(0..tags))).collect()
}

/// Drives a cache+policy with a random access sequence and checks global
/// accounting invariants.
fn drive(config: RlrConfig, accesses: &[(u16, u8)]) {
    let geometry = CacheConfig { sets: 8, ways: 4, latency: 1 };
    let mut cache = SetAssocCache::new(
        "prop",
        geometry,
        Box::new(RlrPolicy::with_config(config, &geometry)),
    );
    for (i, &(line, tag)) in accesses.iter().enumerate() {
        let access = Access {
            pc: u64::from(tag) * 4,
            addr: u64::from(line) * 64,
            kind: kind_of(tag),
            core: 0,
            seq: i as u64,
        };
        let out = cache.access(&access);
        // Bypass is disabled on this cache, so every access ends resident.
        assert!(cache.contains(access.addr));
        if out.hit {
            assert!(out.evicted.is_none());
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.accesses(), accesses.len() as u64);
    assert!(stats.hits() <= stats.accesses());
}

#[test]
fn optimized_never_misbehaves() {
    check(
        "optimized_never_misbehaves",
        Config::with_cases(48),
        |rng| line_tag_seq(rng, 256, 16, 1..600),
        |seq| {
            drive(RlrConfig::optimized(), seq);
            Ok(())
        },
    );
}

#[test]
fn unoptimized_never_misbehaves() {
    check(
        "unoptimized_never_misbehaves",
        Config::with_cases(48),
        |rng| line_tag_seq(rng, 256, 16, 1..600),
        |seq| {
            drive(RlrConfig::unoptimized(), seq);
            Ok(())
        },
    );
}

#[test]
fn multicore_never_misbehaves() {
    check(
        "multicore_never_misbehaves",
        Config::with_cases(48),
        |rng| line_tag_seq(rng, 256, 16, 1..600),
        |seq| {
            drive(RlrConfig::multicore(4), seq);
            Ok(())
        },
    );
}

/// The predicted reuse distance never exceeds `multiplier x max_age`
/// (the accumulator adds saturated ages only). The policy is driven
/// directly through a faithful miniature cache loop so its RD is
/// observable after every access.
#[test]
fn rd_is_bounded() {
    check(
        "rd_is_bounded",
        Config::with_cases(48),
        |rng| line_tag_seq(rng, 64, 16, 1..800),
        |seq| {
            use cache_sim::{Decision, LineSnapshot, ReplacementPolicy};
            let geometry = CacheConfig { sets: 4, ways: 4, latency: 1 };
            let config = RlrConfig::unoptimized();
            let mut policy = RlrPolicy::with_config(config, &geometry);
            let (sets, ways) = (geometry.sets as usize, geometry.ways as usize);
            let mut tags = vec![u64::MAX; sets * ways];
            let bound = (config.rd_multiplier * config.max_age() as f64).round() as u64;
            for (i, &(line16, tag)) in seq.iter().enumerate() {
                let line = u64::from(line16);
                let access = Access {
                    pc: u64::from(tag) * 4,
                    addr: line * 64,
                    kind: kind_of(tag),
                    core: 0,
                    seq: i as u64,
                };
                let set = (line % sets as u64) as usize;
                let base = set * ways;
                if let Some(w) = (0..ways).find(|&w| tags[base + w] == line) {
                    policy.on_hit(set as u32, w as u16, &access);
                } else {
                    policy.on_miss(set as u32, &access);
                    let w = if let Some(free) = (0..ways).find(|&w| tags[base + w] == u64::MAX) {
                        free
                    } else {
                        let snapshot: Vec<LineSnapshot> = (0..ways)
                            .map(|w| LineSnapshot {
                                valid: true,
                                line: tags[base + w],
                                dirty: false,
                                core: 0,
                            })
                            .collect();
                        match policy.select_victim(set as u32, &snapshot, &access) {
                            Decision::Evict(w) => w as usize,
                            Decision::Bypass => 0,
                        }
                    };
                    tags[base + w] = line;
                    policy.on_fill(set as u32, w as u16, &access);
                }
                prop_assert!(
                    policy.predicted_reuse_distance() <= bound.max(config.max_age()),
                    "RD {} exceeded bound {}",
                    policy.predicted_reuse_distance(),
                    bound
                );
            }
            Ok(())
        },
    );
}

/// Two identical access sequences produce identical victim choices
/// (full determinism, required for the replay methodology).
#[test]
fn policy_is_deterministic() {
    check(
        "policy_is_deterministic",
        Config::with_cases(48),
        |rng| line_tag_seq(rng, 128, 16, 1..400),
        |seq| {
            let geometry = CacheConfig { sets: 4, ways: 4, latency: 1 };
            let run = || {
                let mut cache = SetAssocCache::new(
                    "det",
                    geometry,
                    Box::new(RlrPolicy::optimized(&geometry)),
                );
                let mut evictions = Vec::new();
                for (i, &(line, tag)) in seq.iter().enumerate() {
                    let access = Access {
                        pc: u64::from(tag) * 4,
                        addr: u64::from(line) * 64,
                        kind: kind_of(tag),
                        core: 0,
                        seq: i as u64,
                    };
                    let out = cache.access(&access);
                    evictions.push(out.evicted);
                }
                evictions
            };
            prop_assert_eq!(run(), run());
            Ok(())
        },
    );
}

#[test]
fn overhead_grows_with_counter_widths() {
    use cache_sim::ReplacementPolicy;
    let llc = CacheConfig::with_capacity_kb(2048, 16, 26);
    let mut previous = 0;
    for bits in 2..=8 {
        let config = RlrConfig { age_bits: bits, ..RlrConfig::unoptimized() };
        let policy = RlrPolicy::with_config(config, &llc);
        let overhead = policy.overhead_bits(&llc);
        assert!(overhead > previous, "overhead must grow with age bits");
        previous = overhead;
    }
}
