//! Property tests for the packed-metadata codecs (`rlr::packed`): every
//! field written must read back exactly, writes must not disturb
//! neighbouring fields, and the 3-bit epoch phase must agree with the
//! policy's wide-counter arithmetic.

use rlr::packed::{EpochPhase, HwLineState, LineMeta};
use simrng::prop::{check, Config};
use simrng::{prop_assert, prop_assert_eq, Rng};

#[test]
fn hw_line_state_round_trips_exhaustively() {
    // 4 bits: all 16 states, plus every possible junk high nibble.
    for nibble in 0u8..16 {
        let state = HwLineState::unpack(nibble);
        assert_eq!(state.pack(), nibble, "pack(unpack(n)) must be the identity on nibbles");
        for junk in 0u8..16 {
            assert_eq!(
                HwLineState::unpack(nibble | (junk << 4)),
                state,
                "high bits must be ignored"
            );
        }
    }
}

#[test]
fn hw_line_state_round_trips_random_fields() {
    check(
        "hw_line_state_round_trips_random_fields",
        Config::default(),
        |rng| rng.gen_range(0u64..16) as u8,
        |&bits| {
            let state = HwLineState {
                age: bits & HwLineState::MAX_AGE,
                hit: bits & 4 != 0,
                prefetched: bits & 8 != 0,
            };
            prop_assert_eq!(HwLineState::unpack(state.pack()), state);
            prop_assert!(state.pack() < 1 << HwLineState::BITS, "must fit the 4-bit budget");
            Ok(())
        },
    );
}

#[test]
fn epoch_phase_round_trips_and_ignores_high_bits() {
    for raw in 0u8..=255 {
        let phase = EpochPhase::unpack(raw);
        assert!(phase.phase() < EpochPhase::MODULUS);
        assert_eq!(phase.pack(), raw % EpochPhase::MODULUS);
        assert_eq!(EpochPhase::unpack(phase.pack()), phase);
    }
}

/// The 3-bit counter must track `miss_count % 8` and wrap exactly when
/// the policy's wide counter crosses an epoch boundary — the codec and
/// `RlrPolicy`'s `miss_count / misses_per_epoch` arithmetic are two views
/// of the same hardware state.
#[test]
fn epoch_phase_matches_wide_counter_arithmetic() {
    check(
        "epoch_phase_matches_wide_counter_arithmetic",
        Config::default(),
        |rng| rng.gen_range(0u64..500),
        |&misses| {
            let mut phase = EpochPhase::default();
            let mut epochs = 0u64;
            for _ in 0..misses {
                if phase.tick() {
                    epochs += 1;
                }
            }
            prop_assert_eq!(u64::from(phase.phase()), misses % u64::from(EpochPhase::MODULUS));
            prop_assert_eq!(epochs, misses / u64::from(EpochPhase::MODULUS));
            Ok(())
        },
    );
}

/// Model-based check of the byte-wide [`LineMeta`] codec: an arbitrary
/// interleaving of fills, hit-count stores, and type stores must leave the
/// packed byte equal to an unpacked (count, prefetch, demand) model.
#[test]
fn line_meta_matches_unpacked_model() {
    check(
        "line_meta_matches_unpacked_model",
        Config::default(),
        |rng| {
            let n = rng.gen_range(1usize..64);
            (0..n)
                .map(|_| (rng.gen_range(0u64..3) as u8, rng.gen_range(0u64..256) as u8))
                .collect::<Vec<(u8, u8)>>()
        },
        |ops| {
            let mut packed = LineMeta::default();
            let (mut count, mut prefetch, mut demand) = (0u8, false, false);
            for &(op, arg) in ops {
                match op {
                    0 => {
                        let (p, d) = (arg & 1 != 0, arg & 2 != 0);
                        packed = LineMeta::filled(p, d);
                        (count, prefetch, demand) = (0, p, d);
                    }
                    1 => {
                        let c = arg & ((1 << LineMeta::MAX_HIT_BITS) - 1);
                        packed.set_hit_count(c);
                        count = c;
                    }
                    _ => {
                        let (p, d) = (arg & 1 != 0, arg & 2 != 0);
                        packed.set_access_type(p, d);
                        (prefetch, demand) = (p, d);
                    }
                }
                prop_assert_eq!(packed.hit_count(), count);
                prop_assert_eq!(packed.last_prefetch(), prefetch);
                prop_assert_eq!(packed.last_demand(), demand);
            }
            Ok(())
        },
    );
}
