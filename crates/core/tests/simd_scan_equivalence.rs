//! Differential wall between the victim-scan backends: the lane-parallel
//! reduction ([`rlr::scan::scan_lanes`]) against the one-accumulator
//! scalar reference ([`rlr::scan::scan_scalar`]), which stays compiled in
//! every build exactly so this suite can cross-check whichever backend
//! [`rlr::scan::scan`] resolves to.
//!
//! The property sweeps randomized way counts (1..=32, deliberately
//! including non-multiples of the lane width), stamp distributions from
//! all-distinct to heavily tied (including staleness values past the
//! 38-bit saturation clamp), random metadata bytes, out-of-range core ids,
//! and every configuration axis of the scan. Failures shrink to a minimal
//! way vector and report a `PROP_SEED` for exact replay.

use rlr::packed::LineMeta;
use rlr::scan::{self, ScanParams, ScanWays, LANES, REC_MASK};
use simrng::prop::{check, Config};
use simrng::{prop_assert, prop_assert_eq, Rng, SimRng};

/// One way's generated inputs: `(age_stamp, rec_stamp, meta_bits, core)`.
/// `meta_bits` encodes hit count (low 6 bits), prefetch (bit 6), and
/// demand (bit 7), mirroring [`LineMeta`]'s packing.
type WayInput = (u64, u64, u8, u8);

/// Scan-wide knobs; rides along the shrunk way vector unchanged.
#[derive(Clone, Debug)]
struct Knobs {
    now: u64,
    clock: u64,
    rd: u64,
    max_age: u64,
    age_weight: u32,
    use_type: bool,
    use_hit: bool,
    exact_recency: bool,
    core_rank: Vec<u32>,
}

type Case = (Vec<WayInput>, Knobs);

fn meta_of(bits: u8) -> LineMeta {
    let mut meta = LineMeta::filled(bits & 0x40 != 0, bits & 0x80 != 0);
    meta.set_hit_count(bits & 0x3F);
    meta
}

fn gen_case(rng: &mut SimRng) -> Case {
    let ways = rng.gen_range(1..=32usize);
    // Stamp spread: 2^0 (everything ties) up to 2^39 (staleness saturates
    // past REC_MASK when the clock is high enough).
    let spread = 1u64 << rng.gen_range(0..40u32);
    let now = rng.gen_range(0..1u64 << 40);
    let clock = now + rng.gen_range(0..64u64);
    let inputs = (0..ways)
        .map(|_| {
            let age_stamp = now - rng.gen_range(0..spread.min(now + 1));
            let rec_stamp = clock - rng.gen_range(0..spread.min(clock + 1));
            (age_stamp, rec_stamp, rng.gen_range(0..=255u64) as u8, rng.gen_range(0..8u64) as u8)
        })
        .collect();
    let knobs = Knobs {
        now,
        clock,
        rd: rng.gen_range(0..64u64),
        max_age: [3, 31, rng.gen_range(1..1u64 << 38)][rng.gen_range(0..3u64) as usize],
        age_weight: rng.gen_range(0..=256u32),
        use_type: rng.gen_range(0..2u64) == 1,
        use_hit: rng.gen_range(0..2u64) == 1,
        exact_recency: rng.gen_range(0..2u64) == 1,
        // Empty disables P_core; 4 entries exercises it, with way cores
        // drawn from 0..8 so out-of-range ids hit the unwrap_or(0) path.
        core_rank: if rng.gen_range(0..2u64) == 1 {
            (0..4).map(|_| rng.gen_range(0..4u64) as u32).collect()
        } else {
            Vec::new()
        },
    };
    (inputs, knobs)
}

fn run_case((inputs, knobs): &Case) -> Result<(), String> {
    let age_stamps: Vec<u64> = inputs.iter().map(|w| w.0).collect();
    let rec_stamps: Vec<u64> = inputs.iter().map(|w| w.1).collect();
    let metas: Vec<LineMeta> = inputs.iter().map(|w| meta_of(w.2)).collect();
    let cores: Vec<u8> = inputs.iter().map(|w| w.3).collect();
    let params = ScanParams {
        now: knobs.now,
        clock: knobs.clock,
        rd: knobs.rd,
        max_age: knobs.max_age,
        age_weight: knobs.age_weight,
        use_type: knobs.use_type,
        use_hit: knobs.use_hit,
        exact_recency: knobs.exact_recency,
    };
    let ways = ScanWays {
        age_stamps: &age_stamps,
        rec_stamps: &rec_stamps,
        metas: &metas,
        cores: if knobs.core_rank.is_empty() { &[] } else { &cores },
        core_rank: &knobs.core_rank,
    };
    let scalar = scan::scan_scalar(&params, &ways);
    let lanes = scan::scan_lanes(&params, &ways);
    let selected = scan::scan(&params, &ways);
    prop_assert_eq!(
        scalar,
        lanes,
        "backends diverged on {} ways: scalar {:?} vs lanes {:?}",
        inputs.len(),
        scalar,
        lanes
    );
    prop_assert_eq!(selected, scalar, "build-selected backend disagrees with the reference");
    prop_assert!(
        usize::from(scalar.victim()) < inputs.len(),
        "victim {} out of range for {} ways",
        scalar.victim(),
        inputs.len()
    );
    Ok(())
}

#[test]
fn lane_scan_matches_scalar_scan_on_random_sets() {
    check(
        "lane_scan_matches_scalar_scan_on_random_sets",
        Config::with_cases(512),
        gen_case,
        run_case,
    );
}

/// Saturated staleness on every way: keys tie on the clamped REC_MASK
/// field and only the way index separates them — both backends must fall
/// back to the lowest way, whatever the way count's remainder mod LANES.
#[test]
fn saturated_staleness_ties_break_identically() {
    for ways in 1..=(3 * LANES + 1) {
        let age_stamps = vec![0u64; ways];
        let rec_stamps = vec![0u64; ways];
        let metas = vec![LineMeta::filled(false, true); ways];
        let params = ScanParams {
            now: REC_MASK + 17,
            clock: REC_MASK + 17,
            rd: 4,
            max_age: u64::MAX,
            age_weight: 8,
            use_type: true,
            use_hit: true,
            exact_recency: true,
        };
        let scan_ways = ScanWays {
            age_stamps: &age_stamps,
            rec_stamps: &rec_stamps,
            metas: &metas,
            cores: &[],
            core_rank: &[],
        };
        let scalar = scan::scan_scalar(&params, &scan_ways);
        let lanes = scan::scan_lanes(&params, &scan_ways);
        assert_eq!(scalar, lanes, "{ways} ways");
        assert_eq!(scalar.victim(), 0, "{ways} ways: full tie must keep the lowest way");
        assert!(scalar.any_past_rd, "{ways} ways: everything aged past rd=4");
    }
}

/// The single-way set (the smallest non-multiple of the lane width) and
/// each remainder class around one full stripe.
#[test]
fn tiny_sets_cover_every_lane_remainder() {
    let mut rng = SimRng::seed_from_u64(0x51AD_0001);
    for ways in 1..=(2 * LANES) {
        for _ in 0..64 {
            let (mut inputs, knobs) = gen_case(&mut rng);
            inputs.truncate(ways);
            if inputs.is_empty() {
                continue;
            }
            run_case(&(inputs, knobs)).expect("backends must agree");
        }
    }
}
