//! Quick ranking sanity check across the headline policies (dev tool;
//! the full evaluation lives in the `experiments` crate).
use cache_sim::{ReplacementPolicy, SingleCoreSystem, SystemConfig, TrueLru};
use policies::{Drrip, Hawkeye, KpcR, Ship, ShipPp};
use rlr::RlrPolicy;

fn main() {
    let cfg = SystemConfig::paper_single_core();
    let mk: Vec<(&str, Box<dyn Fn() -> Box<dyn ReplacementPolicy>>)> = vec![
        ("LRU", Box::new(|| Box::new(TrueLru::new(&SystemConfig::paper_single_core().llc)))),
        ("DRRIP", Box::new(|| Box::new(Drrip::new(&SystemConfig::paper_single_core().llc)))),
        ("KPC-R", Box::new(|| Box::new(KpcR::new(&SystemConfig::paper_single_core().llc)))),
        ("SHiP", Box::new(|| Box::new(Ship::new(&SystemConfig::paper_single_core().llc)))),
        ("SHiP++", Box::new(|| Box::new(ShipPp::new(&SystemConfig::paper_single_core().llc)))),
        ("Hawkeye", Box::new(|| Box::new(Hawkeye::new(&SystemConfig::paper_single_core().llc)))),
        ("RLR", Box::new(|| Box::new(RlrPolicy::optimized(&SystemConfig::paper_single_core().llc)))),
        ("RLRu", Box::new(|| Box::new(RlrPolicy::unoptimized(&SystemConfig::paper_single_core().llc)))),
    ];
    println!("{:14} {}", "bench", mk.iter().map(|(n,_)| format!("{n:>8}")).collect::<String>());
    for name in ["471.omnetpp", "483.xalancbmk", "435.gromacs", "456.hmmer", "401.bzip2", "450.soplex", "403.gcc", "429.mcf"] {
        let wl = workloads::spec2006(name).unwrap();
        let mut row = format!("{name:14}");
        let mut lru_ipc = 0.0;
        for (i, (_, f)) in mk.iter().enumerate() {
            let mut sys = SingleCoreSystem::new(&cfg, f());
            let mut s = wl.stream();
            sys.warm_up(&mut s, 2_000_000);
            let st = sys.run(s, 10_000_000);
            if i == 0 { lru_ipc = st.ipc(); }
            row += &format!("{:>8.2}", (st.ipc()/lru_ipc - 1.0) * 100.0);
        }
        println!("{row}");
    }
    println!("(IPC speedup % over LRU)");
}
