//! The differential test wall for the hot-path rewrite.
//!
//! [`cache_sim::ReferenceCache`] is the original array-of-structs,
//! `Box<dyn>`-dispatched cache, frozen as the semantic oracle. Every test
//! here replays an identical access stream through the oracle and through
//! the packed, statically-dispatched [`SetAssocCache`] and requires
//! **bit-identical** behaviour: the same [`AccessOutcome`] for every
//! access (hit/miss, fill way, eviction, writeback, bypass), the same
//! final [`cache_sim::CacheStats`], and the same per-way line state.
//!
//! The roster comes from `experiments::PolicyKind::ALL_ONLINE` (plus the
//! Belady oracle), so every policy the paper evaluates crosses this wall.

use cache_sim::{
    Access, AccessKind, AccessOutcome, CacheConfig, LlcRecord, LlcTrace, ReferenceCache,
    ReplacementPolicy, SetAssocCache,
};
use experiments::{LlcPolicy, PolicyKind};
use simrng::prop::{check, Config};
use simrng::{prop_assert_eq, Rng, SimRng};

/// Small geometry so random streams conflict hard and every policy takes
/// thousands of victim decisions.
fn geometry() -> CacheConfig {
    CacheConfig { sets: 16, ways: 8, latency: 20 }
}

fn kind_of(tag: u64) -> AccessKind {
    match tag % 10 {
        0..=5 => AccessKind::Load,
        6..=7 => AccessKind::Rfo,
        8 => AccessKind::Prefetch,
        _ => AccessKind::Writeback,
    }
}

/// A random access stream over a working set a few times the cache size,
/// with a small PC pool (so PC-based policies train) and 4 cores.
fn random_stream(seed: u64, len: usize) -> Vec<Access> {
    let cfg = geometry();
    let mut rng = SimRng::seed_from_u64(seed);
    let lines = u64::from(cfg.sets) * u64::from(cfg.ways) * 4;
    (0..len)
        .map(|seq| {
            let tag = rng.gen_range(0..10u64);
            Access {
                pc: 0x400 + rng.gen_range(0..32u64) * 4,
                addr: rng.gen_range(0..lines) << 6,
                kind: kind_of(tag),
                core: rng.gen_range(0..4u64) as u8,
                seq: seq as u64,
            }
        })
        .collect()
}

/// Drives both implementations with the same policy state machine and the
/// same stream; panics with context on the first divergence. Returns the
/// outcome stream for further checks.
fn assert_equivalent(
    label: &str,
    old: &mut ReferenceCache,
    new: &mut SetAssocCache<LlcPolicy>,
    stream: &[Access],
) -> Vec<AccessOutcome> {
    let mut outcomes = Vec::with_capacity(stream.len());
    for (i, access) in stream.iter().enumerate() {
        let a = old.access(access);
        let b = new.access(access);
        assert_eq!(
            a, b,
            "[{label}] outcome diverged at access {i} ({access:?}): \
             reference {a:?} vs packed {b:?}"
        );
        outcomes.push(b);
    }
    assert_same_final_state(label, old, new);
    outcomes
}

/// Final-state bit-identity: statistics, per-way line state, occupancy.
fn assert_same_final_state(label: &str, old: &ReferenceCache, new: &SetAssocCache<LlcPolicy>) {
    assert_eq!(old.stats(), new.stats(), "[{label}] final statistics diverged");
    let cfg = *new.config();
    for set in 0..cfg.sets {
        let snapshot = new.set_snapshot(set);
        let mut valid = 0;
        for way in 0..cfg.ways {
            let reference = old.line_state(set, way);
            let packed = snapshot[way as usize];
            assert_eq!(
                reference, packed,
                "[{label}] line state diverged at set {set} way {way}"
            );
            valid += u32::from(packed.valid);
        }
        assert_eq!(
            new.occupancy(set),
            valid,
            "[{label}] occupancy bitmap disagrees with per-line valid state at set {set}"
        );
    }
}

fn run_kind(kind: PolicyKind, trace: Option<&LlcTrace>, stream: &[Access]) {
    let cfg = geometry();
    let mut old = ReferenceCache::new("ref", cfg, Box::new(kind.build(&cfg, trace)));
    let mut new = SetAssocCache::new("packed", cfg, kind.build(&cfg, trace));
    let outcomes = assert_equivalent(kind.name(), &mut old, &mut new, stream);
    let hits = outcomes.iter().filter(|o| o.hit).count();
    let evictions = outcomes.iter().filter(|o| o.evicted.is_some()).count();
    assert!(hits > 0, "[{}] stream produced no hits — not a real exercise", kind.name());
    assert!(evictions > 0, "[{}] stream produced no evictions", kind.name());
}

/// Every online policy of the paper's roster, old path vs new path, on a
/// long adversarial stream.
#[test]
fn every_online_policy_is_dispatch_equivalent() {
    let stream = random_stream(0xD1FF_0001, 20_000);
    for kind in PolicyKind::ALL_ONLINE {
        run_kind(kind, None, &stream);
    }
}

/// The Belady oracle keys on sequence numbers and reads line snapshots —
/// the one roster member the online sweep above does not cover.
#[test]
fn belady_is_dispatch_equivalent() {
    let stream = random_stream(0xD1FF_0002, 8_000);
    let mut trace = LlcTrace::new();
    for a in &stream {
        trace.push(LlcRecord { pc: a.pc, line: a.addr >> 6, kind: a.kind, core: a.core });
    }
    run_kind(PolicyKind::Belady, Some(&trace), &stream);
}

/// Bypass decisions (RLR's §IV-C option) must flow through both paths
/// identically — including the deterministic way-0 fallback when the cache
/// refuses the bypass.
#[test]
fn bypass_and_rfo_modes_are_dispatch_equivalent() {
    let cfg = geometry();
    let stream = random_stream(0xD1FF_0003, 12_000);
    let mut bypass_cfg = rlr::RlrConfig::optimized();
    bypass_cfg.bypass = true;
    for allow in [false, true] {
        let build = || LlcPolicy::Rlr(rlr::RlrPolicy::with_config(bypass_cfg, &cfg));
        let mut old = ReferenceCache::new("ref", cfg, Box::new(build()));
        let mut new = SetAssocCache::new("packed", cfg, build());
        old.set_allow_bypass(allow);
        new.set_allow_bypass(allow);
        old.set_rfo_dirties(true);
        new.set_rfo_dirties(true);
        let label = format!("RLR-bypass(allow={allow})");
        let outcomes = assert_equivalent(&label, &mut old, &mut new, &stream);
        if allow {
            assert!(
                outcomes.iter().any(|o| o.bypassed),
                "stream never triggered a bypass — weak test"
            );
        }
    }
}

/// Randomized differential property with shrinking: arbitrary short
/// streams through representative snapshot-free (RLR, SRRIP) and
/// snapshot-consuming (RLR-MC) policies. On failure the harness shrinks
/// the stream and reports a `PROP_SEED` for exact replay.
#[test]
fn random_streams_shrink_to_minimal_divergence() {
    let cfg = geometry();
    check(
        "random_streams_shrink_to_minimal_divergence",
        Config::with_cases(24),
        |rng| {
            let n = rng.gen_range(1usize..600);
            let seed = rng.gen_range(0..u64::MAX / 2);
            random_stream(seed, n)
        },
        |stream| {
            for kind in [PolicyKind::Rlr, PolicyKind::Srrip, PolicyKind::RlrMulticore] {
                let mut old = ReferenceCache::new("ref", cfg, Box::new(kind.build(&cfg, None)));
                let mut new = SetAssocCache::new("packed", cfg, kind.build(&cfg, None));
                for (i, access) in stream.iter().enumerate() {
                    let a = old.access(access);
                    let b = new.access(access);
                    prop_assert_eq!(a, b, "{} diverged at access {}", kind.name(), i);
                }
                prop_assert_eq!(old.stats(), new.stats(), "{} stats diverged", kind.name());
            }
            Ok(())
        },
    );
}

/// The batched replay entry point must be byte-equivalent to one-at-a-time
/// accesses (same policy state machine on both sides).
#[test]
fn access_batch_matches_reference_singles() {
    let cfg = geometry();
    let stream = random_stream(0xD1FF_0004, 10_000);
    let mut old = ReferenceCache::new("ref", cfg, Box::new(PolicyKind::Rlr.build(&cfg, None)));
    let mut new = SetAssocCache::new("packed", cfg, PolicyKind::Rlr.build(&cfg, None));
    let mut batched = Vec::new();
    for chunk in stream.chunks(257) {
        new.access_batch(chunk, &mut batched);
    }
    let singles: Vec<AccessOutcome> = stream.iter().map(|a| old.access(a)).collect();
    assert_eq!(singles, batched);
    assert_eq!(old.stats(), new.stats());
}

/// Snapshot skipping must be decided by the policy: a policy that asks for
/// snapshots gets a full set's worth; the roster's flags match what each
/// `select_victim` actually reads.
#[test]
fn snapshot_flags_match_roster_expectations() {
    let cfg = geometry();
    for kind in PolicyKind::ALL_ONLINE {
        let policy = kind.build(&cfg, None);
        let wants = policy.uses_line_snapshots();
        // Every online policy owns its scan inputs — multicore RLR keeps a
        // per-line core mirror, so even P_core reads no snapshot.
        assert!(
            !wants,
            "{}: uses_line_snapshots() = {wants}, but the whole roster elides snapshots",
            kind.name()
        );
    }
}

/// Multicore RLR through the snapshot-elided packed path: four cores with
/// private PC pools and partially-overlapping address regions, round-robin
/// interleaved so P_core re-rankings decide real evictions. The packed
/// policy reads its own per-line core mirror (it gets an empty snapshot
/// slice); the oracle feeds the frozen `ReferenceCache`'s full snapshots —
/// per-access outcomes, per-core hit counters, final statistics, and line
/// state must all stay bit-identical.
#[test]
fn multicore_rlr_interleaved_streams_match_reference() {
    let cfg = geometry();
    let lines = u64::from(cfg.sets) * u64::from(cfg.ways) * 4;
    let mut rng = SimRng::seed_from_u64(0x3C0_0006);
    let stream: Vec<Access> = (0..40_000u64)
        .map(|seq| {
            let core = (seq % 4) as u8;
            // Half the traffic hits a shared region (cross-core conflict),
            // half a per-core private region (hit-rate asymmetry drives the
            // re-ranking apart).
            let addr = if rng.gen_range(0..2u64) == 0 {
                rng.gen_range(0..lines / 2) << 6
            } else {
                (lines / 2 + u64::from(core) * (lines / 8) + rng.gen_range(0..lines / 8)) << 6
            };
            Access {
                pc: 0x400 + u64::from(core) * 0x1000 + rng.gen_range(0..8u64) * 4,
                addr,
                kind: kind_of(rng.gen_range(0..10u64)),
                core,
                seq,
            }
        })
        .collect();

    let kind = PolicyKind::RlrMulticore;
    let mut old = ReferenceCache::new("ref", cfg, Box::new(kind.build(&cfg, None)));
    let mut new = SetAssocCache::new("packed", cfg, kind.build(&cfg, None));
    let mut reference_hits = [0u64; 4];
    let mut packed_hits = [0u64; 4];
    let mut evictions = 0u64;
    for (i, access) in stream.iter().enumerate() {
        let a = old.access(access);
        let b = new.access(access);
        assert_eq!(
            a, b,
            "[RLR-MC] outcome diverged at access {i} ({access:?}): \
             reference {a:?} vs packed {b:?}"
        );
        let core = usize::from(access.core);
        reference_hits[core] += u64::from(a.hit);
        packed_hits[core] += u64::from(b.hit);
        evictions += u64::from(b.evicted.is_some());
    }
    assert_eq!(reference_hits, packed_hits, "[RLR-MC] per-core hit counters diverged");
    assert_same_final_state("RLR-MC", &old, &new);
    assert!(evictions > 0, "[RLR-MC] stream produced no evictions");
    for (core, &hits) in packed_hits.iter().enumerate() {
        assert!(hits > 0, "[RLR-MC] core {core} produced no hits — not a real exercise");
    }
}
