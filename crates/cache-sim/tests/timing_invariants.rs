//! Property suite for the timing layer, run against BOTH timing modes.
//!
//! Each case is a raw `Vec<u64>` (so the simrng harness can shrink it by
//! halving) decoded deterministically into a sequence of timing operations.
//! The invariants hold for the analytic and the event model alike:
//!
//! - IPC never exceeds the issue width,
//! - the cycle count is monotone non-decreasing across operations,
//! - MSHR occupancy never exceeds `config.mshrs`,
//! - dependent long-latency chains serialize (no MLP credit),
//! - `finish()` drains every pending miss,
//! - event-mode runs are bit-deterministic,
//! - the integer fixed-point clock matches an f64 replica of the same
//!   control flow to within rounding error.

use cache_sim::{DramTiming, ServiceLevel, SystemConfig, TimingMode, TimingModel};
use simrng::prop::{check, Config};
use simrng::{prop_assert, Rng};

/// One decoded timing operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Retire `n` non-memory instructions.
    Retire(u32),
    /// One memory operation at `level`; `dependent` chains it on the
    /// previous long-latency access.
    Mem { level: ServiceLevel, dependent: bool, line: u64 },
    /// One instruction fetch at `level`.
    Fetch { level: ServiceLevel, line: u64 },
}

/// Decodes one raw word into an operation. Purely arithmetic so a shrunk
/// (halved) word decodes to a nearby, usually simpler, operation.
fn decode(word: u64) -> Op {
    let line = (word >> 16) % 65_536;
    match word % 10 {
        0..=2 => Op::Retire((word >> 4) as u32 % 32),
        3 => Op::Mem { level: ServiceLevel::L1, dependent: false, line },
        4 => Op::Mem { level: ServiceLevel::L2, dependent: false, line },
        5 => Op::Mem { level: ServiceLevel::Llc, dependent: word >> 4 & 1 == 1, line },
        6 | 7 => Op::Mem { level: ServiceLevel::Memory, dependent: word >> 4 & 1 == 1, line },
        8 => Op::Mem { level: ServiceLevel::MemoryRowHit, dependent: word >> 4 & 1 == 1, line },
        _ => Op::Fetch {
            level: if word >> 4 & 1 == 1 { ServiceLevel::Memory } else { ServiceLevel::L2 },
            line,
        },
    }
}

/// Replays `ops` on a fresh model pair, checking the per-step invariants,
/// and returns the finished (cycles, instructions).
fn replay(ops: &[Op], config: &SystemConfig) -> Result<(u64, u64), String> {
    let mut timing = TimingModel::new(config);
    let mut dram = DramTiming::new(config);
    let mut last_cycles = 0u64;
    for op in ops {
        match *op {
            Op::Retire(n) => timing.retire(n),
            Op::Mem { level, dependent, line } => {
                timing.memory_op(level, dependent, line, &mut dram, config);
            }
            Op::Fetch { level, line } => timing.instr_fetch(level, line, &mut dram, config),
        }
        prop_assert!(
            timing.cycles() >= last_cycles,
            "cycles went backwards: {} -> {} after {op:?}",
            last_cycles,
            timing.cycles()
        );
        last_cycles = timing.cycles();
        prop_assert!(
            timing.outstanding_misses() <= config.mshrs as usize,
            "{} misses in flight with only {} MSHRs",
            timing.outstanding_misses(),
            config.mshrs
        );
    }
    timing.finish();
    prop_assert!(
        timing.cycles() >= last_cycles,
        "finish() moved the clock backwards"
    );
    prop_assert!(
        timing.outstanding_misses() == 0,
        "finish() left {} misses pending",
        timing.outstanding_misses()
    );
    Ok((timing.cycles(), timing.instructions()))
}

/// Generates (raw op words, mshr budget) — small MSHR counts are the
/// interesting regime for the occupancy bound.
fn gen_case(rng: &mut simrng::SimRng) -> (Vec<u64>, u32) {
    let len = rng.gen_range(0..400usize);
    let ops = (0..len).map(|_| rng.next_u64()).collect();
    let mshrs = rng.gen_range(1..12u32);
    (ops, mshrs)
}

fn config_for(mode: TimingMode, mshrs: u32) -> SystemConfig {
    let mut config = SystemConfig::paper_single_core().with_timing(mode);
    config.mshrs = mshrs;
    config
}

fn check_mode(mode: TimingMode) {
    check(
        &format!("timing invariants ({mode})"),
        Config::with_cases(64),
        gen_case,
        move |(raw, mshrs)| {
            let config = config_for(mode, *mshrs);
            let ops: Vec<Op> = raw.iter().copied().map(decode).collect();
            let (cycles, instructions) = replay(&ops, &config)?;

            // IPC is bounded by the issue width (each instruction costs at
            // least 1/width cycles, so instructions <= cycles * width).
            prop_assert!(
                instructions <= cycles * u64::from(config.issue_width) || cycles == 0,
                "IPC above issue width: {instructions} instrs in {cycles} cycles"
            );
            Ok(())
        },
    );
}

#[test]
fn invariants_hold_in_analytic_mode() {
    check_mode(TimingMode::Analytic);
}

#[test]
fn invariants_hold_in_event_mode() {
    check_mode(TimingMode::Event);
}

#[test]
fn event_mode_is_deterministic_per_case() {
    check(
        "event replay is bit-identical",
        Config::with_cases(48),
        gen_case,
        |(raw, mshrs)| {
            let config = config_for(TimingMode::Event, *mshrs);
            let ops: Vec<Op> = raw.iter().copied().map(decode).collect();
            let first = replay(&ops, &config)?;
            let second = replay(&ops, &config)?;
            prop_assert!(
                first == second,
                "two event replays diverged: {first:?} vs {second:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn dependent_chains_serialize() {
    check(
        "dependent memory chain costs at least the serial latency",
        Config::with_cases(32),
        |rng| (rng.gen_range(1..40u64), rng.gen_range(0..2u64) == 1),
        |&(chain, event)| {
            let mode = if event { TimingMode::Event } else { TimingMode::Analytic };
            let config = config_for(mode, 16);
            let mut timing = TimingModel::new(&config);
            let mut dram = DramTiming::new(&config);
            for i in 0..chain {
                // Spread lines across banks so only the dependence — not
                // bank contention — can serialize the chain.
                timing.memory_op(ServiceLevel::Memory, true, i * 128, &mut dram, &config);
            }
            timing.finish();
            let serial = chain * u64::from(ServiceLevel::Memory.latency(&config));
            prop_assert!(
                timing.cycles() >= serial,
                "{chain}-long dependent chain finished in {} cycles (< serial {serial})",
                timing.cycles()
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Fixed-point equivalence: an f64 replica of the analytic control flow.
// ---------------------------------------------------------------------------

/// The analytic model with an f64 clock measured in cycles — the
/// representation `CoreTiming` used before the fixed-point conversion.
/// Control flow mirrors `CoreTiming` exactly; only the time base differs.
struct FloatCore {
    width: f64,
    rob_entries: u64,
    mshrs: usize,
    now: f64,
    instructions: u64,
    pending: std::collections::VecDeque<(f64, u64)>,
    last_long_done: f64,
}

impl FloatCore {
    fn new(config: &SystemConfig) -> Self {
        Self {
            width: f64::from(config.issue_width.max(1)),
            rob_entries: u64::from(config.rob_entries),
            mshrs: config.mshrs as usize,
            now: 0.0,
            instructions: 0,
            pending: std::collections::VecDeque::new(),
            last_long_done: 0.0,
        }
    }

    fn retire(&mut self, n: u32) {
        self.instructions += u64::from(n);
        self.now += f64::from(n) / self.width;
    }

    fn memory_op(&mut self, level: ServiceLevel, dependent: bool, config: &SystemConfig) {
        self.instructions += 1;
        self.now += 1.0 / self.width;
        while let Some(&(done_at, _)) = self.pending.front() {
            if done_at <= self.now {
                self.pending.pop_front();
            } else {
                break;
            }
        }
        if dependent {
            self.now = self.now.max(self.last_long_done);
        }
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.now += 1.0,
            _ => {
                while self.pending.len() >= self.mshrs {
                    let (done_at, _) = self.pending.pop_front().expect("non-empty");
                    self.now = self.now.max(done_at);
                }
                while let Some(&(done_at, at_instr)) = self.pending.front() {
                    if self.instructions - at_instr >= self.rob_entries {
                        self.now = self.now.max(done_at);
                        self.pending.pop_front();
                    } else {
                        break;
                    }
                }
                let done_at = self.now + f64::from(level.latency(config));
                self.pending.push_back((done_at, self.instructions));
                self.last_long_done = done_at;
            }
        }
    }

    fn instr_fetch(&mut self, level: ServiceLevel, config: &SystemConfig) {
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.now += 1.0,
            _ => self.now += f64::from(level.latency(config)) / 2.0,
        }
    }

    fn finish(&mut self) {
        if let Some(&(done_at, _)) = self.pending.back() {
            self.now = self.now.max(done_at);
        }
        self.pending.clear();
    }

    fn cycles(&self) -> u64 {
        self.now.ceil() as u64
    }
}

#[test]
fn fixed_point_clock_matches_f64_replica() {
    check(
        "u64 sub-slot clock tracks the f64 cycle clock",
        Config::with_cases(64),
        gen_case,
        |(raw, mshrs)| {
            let config = config_for(TimingMode::Analytic, *mshrs);
            let mut exact = TimingModel::new(&config);
            let mut dram = DramTiming::new(&config);
            let mut float = FloatCore::new(&config);
            for op in raw.iter().copied().map(decode) {
                match op {
                    Op::Retire(n) => {
                        exact.retire(n);
                        float.retire(n);
                    }
                    Op::Mem { level, dependent, line } => {
                        exact.memory_op(level, dependent, line, &mut dram, &config);
                        float.memory_op(level, dependent, &config);
                    }
                    Op::Fetch { level, line } => {
                        exact.instr_fetch(level, line, &mut dram, &config);
                        float.instr_fetch(level, &config);
                    }
                }
            }
            exact.finish();
            float.finish();
            let (a, b) = (exact.cycles(), float.cycles());
            // The integer clock is exact; the f64 replica accumulates
            // rounding error, so allow a couple of cycles of slack.
            prop_assert!(
                a.abs_diff(b) <= 2,
                "fixed-point clock {a} drifted from f64 replica {b}"
            );
            Ok(())
        },
    );
}
