//! Black-box behavioural tests of the simulation drivers.

use cache_sim::{
    AccessKind, MultiCoreSystem, ServiceLevel, SingleCoreSystem, SystemConfig, TrueLru,
};
use workloads::{Recipe, TraceEntry, Workload};

fn streams(n: usize, wl: &Workload) -> Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> {
    (0..n)
        .map(|i| {
            Box::new(wl.clone().with_seed(wl.seed() ^ i as u64).stream())
                as Box<dyn Iterator<Item = TraceEntry> + Send>
        })
        .collect()
}

#[test]
fn multicore_runs_are_deterministic() {
    let mut config = SystemConfig::paper_quad_core();
    config.cores = 2;
    let wl = Workload::new("det", Recipe::Zipf { bytes: 4 << 20, skew: 0.9, store_ratio: 0.3 });
    let run = || {
        let mut system =
            MultiCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)), streams(2, &wl));
        system.run(50_000, 200_000)
    };
    assert_eq!(run(), run());
}

#[test]
fn finished_cores_keep_generating_interference() {
    // Core 0 runs a fast (cache-resident) workload; core 1 a slow one. The
    // shared-LLC totals must include traffic from after core 0's finish
    // (the LLC access count exceeds what both cores needed to finish).
    let mut config = SystemConfig::paper_quad_core();
    config.cores = 2;
    let fast = Workload::new("fast", Recipe::Zipf { bytes: 32 << 10, skew: 0.8, store_ratio: 0.2 });
    let slow = Workload::new("slow", Recipe::Chase { bytes: 64 << 20 }).with_compute(1, 2);
    let s: Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> =
        vec![Box::new(fast.stream()), Box::new(slow.stream())];
    let mut system = MultiCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)), s);
    let per_core = system.run(10_000, 100_000);
    assert_eq!(per_core.len(), 2);
    // The fast core's IPC must be much higher than the chaser's.
    assert!(per_core[0].ipc() > 4.0 * per_core[1].ipc());
}

#[test]
fn prefetcher_toggle_changes_llc_traffic_only_when_enabled() {
    let on = SystemConfig::paper_single_core();
    let off = SystemConfig::paper_single_core().without_prefetchers();
    let wl = Workload::new("s", Recipe::Cyclic { bytes: 8 << 20, stride: 64, store_ratio: 0.0 })
        .with_local(0.3);
    let run = |config: &SystemConfig| {
        let mut system = SingleCoreSystem::new(config, Box::new(TrueLru::new(&config.llc)));
        system.run(wl.stream(), 200_000)
    };
    let with = run(&on);
    let without = run(&off);
    assert!(with.llc.by_kind[AccessKind::Prefetch.index()].accesses > 0);
    assert_eq!(without.llc.by_kind[AccessKind::Prefetch.index()].accesses, 0);
    assert!(
        with.ipc() > without.ipc(),
        "prefetching a stream must help: {:.3} vs {:.3}",
        with.ipc(),
        without.ipc()
    );
}

#[test]
fn service_levels_order_by_latency() {
    let config = SystemConfig::paper_single_core();
    let levels = [
        ServiceLevel::L1,
        ServiceLevel::L2,
        ServiceLevel::Llc,
        ServiceLevel::MemoryRowHit,
        ServiceLevel::Memory,
    ];
    for pair in levels.windows(2) {
        assert!(
            pair[0].latency(&config) < pair[1].latency(&config),
            "{:?} must be cheaper than {:?}",
            pair[0],
            pair[1]
        );
    }
    assert!(!ServiceLevel::L1.is_long());
    assert!(!ServiceLevel::L2.is_long());
    assert!(ServiceLevel::Llc.is_long());
    assert!(ServiceLevel::MemoryRowHit.is_long());
}

#[test]
fn warm_up_and_measure_split_is_respected() {
    let config = SystemConfig::paper_single_core();
    let wl = Workload::new("w", Recipe::Zipf { bytes: 1 << 20, skew: 1.0, store_ratio: 0.2 });
    let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
    let mut stream = wl.stream();
    system.warm_up(&mut stream, 100_000);
    let stats = system.run(stream, 50_000);
    // Measured instructions only count the post-warm-up phase.
    assert!(stats.instructions >= 50_000);
    assert!(stats.instructions < 80_000, "warm-up instructions must not leak into the measurement");
}
