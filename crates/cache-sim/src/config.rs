//! Cache and system geometry, defaulting to Table III of the paper.

use crate::timing::TimingMode;

/// Geometry and latency of one cache level.
///
/// ```
/// use cache_sim::CacheConfig;
///
/// let llc = CacheConfig::with_capacity_kb(2048, 16, 26);
/// assert_eq!(llc.sets, 2048);
/// assert_eq!(llc.capacity_bytes(), 2 << 20);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u16,
    /// Access latency in cycles (hit service time at this level).
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a config from capacity in KB, associativity, and latency.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero or not a power of two.
    pub fn with_capacity_kb(capacity_kb: u64, ways: u16, latency: u32) -> Self {
        let lines = capacity_kb * 1024 / crate::LINE_BYTES;
        let sets = lines / u64::from(ways);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(sets.is_power_of_two(), "set count must be a power of two (got {sets})");
        Self { sets: sets as u32, ways, latency }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * crate::LINE_BYTES
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways)
    }

    /// Set index for a byte address.
    pub fn set_of(&self, addr: u64) -> u32 {
        ((addr >> 6) & u64::from(self.sets - 1)) as u32
    }

    /// Bits needed to encode a way index (`log2(ways)` rounded up).
    pub fn way_bits(&self) -> u32 {
        16 - u16::leading_zeros(self.ways.saturating_sub(1).max(1))
    }
}

/// Which prefetcher drives L2 (Table III uses IP-stride; §V-B swaps in
/// KPC-P).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum L2PrefetcherKind {
    /// Per-PC stride detection (the paper's default configuration).
    IpStride,
    /// KPC-P: PC-free delta-signature prefetching with confidence-scaled
    /// fill levels.
    KpcP,
}

/// Full-system configuration (core model + cache hierarchy), mirroring
/// Table III of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Number of cores sharing the LLC.
    pub cores: u8,
    /// Issue/retire width of each core (paper: 3).
    pub issue_width: u32,
    /// Reorder-buffer capacity (paper: 256).
    pub rob_entries: u32,
    /// Outstanding LLC/memory misses per core (MSHR count).
    pub mshrs: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared LLC (already sized for `cores`; the paper uses 2 MB per core).
    pub llc: CacheConfig,
    /// Main-memory access latency in cycles for a DRAM row-buffer miss
    /// (precharge + activate + column access).
    pub memory_latency: u32,
    /// Main-memory latency for a DRAM row-buffer hit (column access only).
    pub memory_row_hit_latency: u32,
    /// Enable the L1 next-line and L2 prefetchers.
    pub prefetchers: bool,
    /// Which prefetcher runs at L2 when prefetching is enabled.
    pub l2_prefetcher: L2PrefetcherKind,
    /// Which core timing model converts hit/miss outcomes into cycles.
    /// Purely a timing-layer selector: functional results (hits, misses,
    /// captures, oracle labels) are identical under both modes.
    pub timing: TimingMode,
}

impl SystemConfig {
    /// The paper's single-core configuration: 3-issue, 256-entry ROB,
    /// 32 KB 8-way L1s (4 cycles), 256 KB 8-way L2 (12 cycles),
    /// 2 MB 16-way LLC (26 cycles), next-line L1 / IP-stride L2 prefetchers.
    pub fn paper_single_core() -> Self {
        Self {
            cores: 1,
            issue_width: 3,
            rob_entries: 256,
            mshrs: 16,
            l1i: CacheConfig::with_capacity_kb(32, 8, 4),
            l1d: CacheConfig::with_capacity_kb(32, 8, 4),
            l2: CacheConfig::with_capacity_kb(256, 8, 12),
            llc: CacheConfig::with_capacity_kb(2 * 1024, 16, 26),
            memory_latency: 200,
            memory_row_hit_latency: 120,
            prefetchers: true,
            l2_prefetcher: L2PrefetcherKind::IpStride,
            timing: TimingMode::Analytic,
        }
    }

    /// The paper's four-core configuration: same per-core resources with an
    /// 8 MB shared LLC (2 MB per core).
    pub fn paper_quad_core() -> Self {
        let mut cfg = Self::paper_single_core();
        cfg.cores = 4;
        cfg.llc = CacheConfig::with_capacity_kb(8 * 1024, 16, 26);
        cfg
    }

    /// Returns a copy with prefetchers disabled (for ablations).
    pub fn without_prefetchers(mut self) -> Self {
        self.prefetchers = false;
        self
    }

    /// Returns a copy with KPC-P as the L2 prefetcher (the §V-B
    /// configuration).
    pub fn with_kpc_prefetcher(mut self) -> Self {
        self.l2_prefetcher = L2PrefetcherKind::KpcP;
        self
    }

    /// Returns a copy using the given core timing model.
    pub fn with_timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_llc_geometry_matches_table_iii() {
        let cfg = SystemConfig::paper_single_core();
        assert_eq!(cfg.llc.sets, 2048);
        assert_eq!(cfg.llc.ways, 16);
        assert_eq!(cfg.llc.capacity_bytes(), 2 << 20);
        assert_eq!(cfg.l2.capacity_bytes(), 256 << 10);
        assert_eq!(cfg.l1d.capacity_bytes(), 32 << 10);
    }

    #[test]
    fn quad_core_llc_is_8mb() {
        let cfg = SystemConfig::paper_quad_core();
        assert_eq!(cfg.llc.capacity_bytes(), 8 << 20);
        assert_eq!(cfg.cores, 4);
    }

    #[test]
    fn set_indexing_masks_line_address() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        assert_eq!(cfg.set_of(0), 0);
        assert_eq!(cfg.set_of(64), 1);
        assert_eq!(cfg.set_of(64 * 2048), 0);
    }

    #[test]
    fn way_bits() {
        assert_eq!(CacheConfig::with_capacity_kb(2048, 16, 1).way_bits(), 4);
        assert_eq!(CacheConfig::with_capacity_kb(32, 8, 1).way_bits(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _ = CacheConfig::with_capacity_kb(96, 8, 1);
    }
}
