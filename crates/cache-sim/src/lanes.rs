//! Lane-parallel u64 min-reduction for victim scans.
//!
//! Victim selection across the workspace reduces a set to the minimum of a
//! packed per-way key whose low bits carry the way index. Because every key
//! is unique (the way disambiguates full ties), `min` over the keys is a
//! plain associative, commutative fold — the reduction order cannot change
//! the winner — so the scan can run as [`LANES`] independent accumulator
//! lanes that LLVM keeps in vector registers (or, on targets without an
//! unsigned 64-bit vector min, as independent scalar chains that still
//! break the serial dependency of a one-accumulator loop).
//!
//! The `scalar-scan` cargo feature swaps [`min_key`] to the one-accumulator
//! reference loop at build time; `scripts/ci.sh` runs the differential
//! walls against both builds so the two backends stay interchangeable.

/// Accumulator lanes in the vectorized reduction.
pub const LANES: usize = 4;

/// One-accumulator reference reduction: the minimum key in `keys`.
///
/// # Panics
///
/// Panics when `keys` is empty (a victim scan always sees ≥ 1 way).
#[inline]
pub fn min_key_scalar(keys: &[u64]) -> u64 {
    assert!(!keys.is_empty(), "victim scan over an empty set");
    keys.iter().copied().fold(u64::MAX, u64::min)
}

/// Lane-parallel reduction: identical result to [`min_key_scalar`] for any
/// input, in any build, on any target — only the schedule differs.
///
/// # Panics
///
/// Panics when `keys` is empty (a victim scan always sees ≥ 1 way).
#[inline]
pub fn min_key_lanes(keys: &[u64]) -> u64 {
    assert!(!keys.is_empty(), "victim scan over an empty set");
    #[cfg(target_arch = "x86_64")]
    {
        // `vpminuq` needs AVX-512VL; detection results are cached by std.
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: feature presence was just verified at runtime.
            return unsafe { min_key_lanes_avx512(keys) };
        }
    }
    min_key_lanes_portable(keys)
}

/// [`min_key_lanes_portable`] compiled with the unsigned 64-bit vector min
/// available, so the lane accumulators become one `vpminuq` per stripe.
/// Same fold, same result — the wrapper only widens the registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn min_key_lanes_avx512(keys: &[u64]) -> u64 {
    min_key_lanes_portable(keys)
}

#[inline(always)]
fn min_key_lanes_portable(keys: &[u64]) -> u64 {
    let mut acc = [u64::MAX; LANES];
    let mut chunks = keys.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, &k) in acc.iter_mut().zip(chunk) {
            *a = (*a).min(k);
        }
    }
    let mut best = acc.into_iter().fold(u64::MAX, u64::min);
    for &k in chunks.remainder() {
        best = best.min(k);
    }
    best
}

/// The build-selected reduction backend ([`min_key_lanes`] by default, the
/// scalar reference under the `scalar-scan` feature).
#[inline]
pub fn min_key(keys: &[u64]) -> u64 {
    if cfg!(feature = "scalar-scan") {
        min_key_scalar(keys)
    } else {
        min_key_lanes(keys)
    }
}

/// `true` when [`min_key`] resolves to the lane backend in this build.
#[must_use]
pub const fn lanes_enabled() -> bool {
    !cfg!(feature = "scalar-scan")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_all_lengths_and_positions() {
        for n in 1..=33usize {
            for min_at in 0..n {
                let keys: Vec<u64> =
                    (0..n).map(|i| if i == min_at { 7 } else { 1000 + i as u64 }).collect();
                assert_eq!(min_key_scalar(&keys), 7);
                assert_eq!(min_key_lanes(&keys), 7);
                assert_eq!(min_key(&keys), 7);
            }
        }
    }

    #[test]
    fn extreme_values_survive_both_backends() {
        let keys = [u64::MAX, u64::MAX - 1, 0, u64::MAX];
        assert_eq!(min_key_scalar(&keys), 0);
        assert_eq!(min_key_lanes(&keys), 0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_scan_panics() {
        let _ = min_key(&[]);
    }
}
