//! The replacement-policy interface and the built-in reference policies.

use crate::access::Access;
use crate::config::CacheConfig;

/// A read-only view of one cache line handed to the policy during victim
/// selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LineSnapshot {
    /// Whether the way holds a valid line. The cache fills invalid ways
    /// itself, so policies normally see only full sets, but the snapshot is
    /// honest anyway.
    pub valid: bool,
    /// Line address (byte address >> 6) stored in the way.
    pub line: u64,
    /// Dirty bit.
    pub dirty: bool,
    /// Core that inserted or last touched the line.
    pub core: u8,
}

/// A replacement decision for a fill into a full set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Evict the line in this way and fill into it.
    Evict(u16),
    /// Do not cache the incoming line. Only honoured for non-writeback
    /// accesses in caches with bypass enabled; otherwise the cache falls
    /// back to way 0.
    Bypass,
}

/// An LLC replacement policy.
///
/// The cache drives the policy with three callbacks:
///
/// * [`select_victim`](ReplacementPolicy::select_victim) — on a miss whose
///   set is full, pick a way to evict (or bypass).
/// * [`on_hit`](ReplacementPolicy::on_hit) — the access hit in `way`.
/// * [`on_fill`](ReplacementPolicy::on_fill) — the missing line was inserted
///   into `way` (after any eviction).
///
/// Policies keep all their per-line metadata internally, indexed by
/// `(set, way)`, exactly as the hardware tables they model would.
/// [`overhead_bits`](ReplacementPolicy::overhead_bits) reports that metadata
/// cost, reproducing Table I of the paper.
pub trait ReplacementPolicy: Send {
    /// Human-readable policy name (e.g. `"DRRIP"`).
    fn name(&self) -> String;

    /// Notifies the policy that `access` missed in `set`, before any victim
    /// selection or fill. Called for every miss, including fills into
    /// invalid ways, so policies can count set misses exactly.
    fn on_miss(&mut self, _set: u32, _access: &Access) {}

    /// Chooses a victim way for `access`, which missed in full `set`.
    fn select_victim(&mut self, set: u32, lines: &[LineSnapshot], access: &Access) -> Decision;

    /// Notifies the policy that `access` hit in `(set, way)`.
    fn on_hit(&mut self, set: u32, way: u16, access: &Access);

    /// Notifies the policy that `access` was filled into `(set, way)`.
    fn on_fill(&mut self, set: u32, way: u16, access: &Access);

    /// Metadata storage in bits for a cache of this geometry.
    fn overhead_bits(&self, config: &CacheConfig) -> u64;

    /// Whether [`select_victim`](ReplacementPolicy::select_victim) reads the
    /// `lines` snapshot. Policies that track all their state internally
    /// (keyed by `(set, way)` callbacks alone) override this to `false`,
    /// letting the cache skip snapshot construction on their evictions —
    /// they are then handed an empty slice. Defaults to `true` (always
    /// correct, possibly slower).
    fn uses_line_snapshots(&self) -> bool {
        true
    }

    /// Ways `access` is allowed to *fill* into, as a bitmap (bit `w` = way
    /// `w` eligible). The cache intersects this with its invalid-way scan
    /// before consulting [`select_victim`](ReplacementPolicy::select_victim),
    /// so a partitioning policy can confine each requestor to its slice of
    /// the set; the policy's own victim choice must respect the same mask.
    /// Lookups are unaffected — a hit is served wherever the line resides,
    /// exactly like hardware way-partitioning, which constrains allocation
    /// only. The default keeps every way eligible.
    fn fill_mask(&self, _access: &Access) -> u32 {
        u32::MAX
    }
}

/// Boxed policies behave exactly like the policy they wrap, so the generic
/// [`crate::SetAssocCache`] can fall back to dynamic dispatch
/// (`SetAssocCache<Box<dyn ReplacementPolicy>>`, the default type
/// parameter) wherever the concrete policy type is not known statically.
impl<P: ReplacementPolicy + ?Sized> ReplacementPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn on_miss(&mut self, set: u32, access: &Access) {
        (**self).on_miss(set, access);
    }

    fn select_victim(&mut self, set: u32, lines: &[LineSnapshot], access: &Access) -> Decision {
        (**self).select_victim(set, lines, access)
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        (**self).on_hit(set, way, access);
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        (**self).on_fill(set, way, access);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        (**self).overhead_bits(config)
    }

    fn uses_line_snapshots(&self) -> bool {
        (**self).uses_line_snapshots()
    }

    fn fill_mask(&self, access: &Access) -> u32 {
        (**self).fill_mask(access)
    }
}

/// Full (true) LRU with one recency counter per line.
///
/// Used as the default policy for L1/L2 and as the paper's baseline at the
/// LLC. Storage: `log2(ways)` bits per line (Table I: 16 KB for a 2 MB
/// 16-way LLC).
///
/// ```
/// use cache_sim::{CacheConfig, ReplacementPolicy, TrueLru};
///
/// let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
/// let lru = TrueLru::new(&cfg);
/// assert_eq!(lru.overhead_bits(&cfg), 16 * 8 * 1024); // 16 KB
/// ```
#[derive(Clone, Debug)]
pub struct TrueLru {
    ways: u16,
    /// Per-line recency stamp; larger = more recent. Indexed `set*ways+way`.
    stamps: Vec<u64>,
    clock: u64,
}

impl TrueLru {
    /// Creates an LRU policy for the given geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self {
            ways: config.ways,
            stamps: vec![0; config.lines() as usize],
            clock: 0,
        }
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn touch(&mut self, set: u32, way: u16) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.clock;
    }
}

impl ReplacementPolicy for TrueLru {
    fn name(&self) -> String {
        "LRU".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        // Packed-key lane scan: `(stamp << way_bits) | way`. Stamps are
        // unique whenever non-zero (the clock ticks on every touch), and
        // zero-stamp ties resolve to the lowest way because the way sits in
        // the low bits — exactly the first-minimum the old `min_by_key`
        // scan returned. 6 way bits leave 2^58 clock ticks of headroom.
        let base = self.idx(set, 0);
        let stamps = &self.stamps[base..base + usize::from(self.ways)];
        let mut keys = [u64::MAX; crate::cache::MAX_WAYS];
        for (way, (&stamp, key)) in stamps.iter().zip(&mut keys).enumerate() {
            debug_assert!(stamp < 1 << 58, "LRU clock exceeds the packed-key range");
            *key = (stamp << 6) | way as u64;
        }
        Decision::Evict((crate::lanes::min_key(&keys[..stamps.len()]) & 0x3F) as u16)
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        self.touch(set, way);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        config.lines() * u64::from(config.way_bits())
    }

    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only the internal stamp table
    }
}

/// A trivial pseudo-random policy (xorshift), useful as a floor baseline
/// and for differential testing. Zero metadata.
#[derive(Clone, Debug)]
pub struct RandomLite {
    ways: u16,
    state: u64,
}

impl RandomLite {
    /// Creates the policy with a fixed internal seed.
    pub fn new(config: &CacheConfig) -> Self {
        Self { ways: config.ways, state: 0x9E37_79B9_7F4A_7C15 }
    }
}

impl ReplacementPolicy for RandomLite {
    fn name(&self) -> String {
        "Random".to_owned()
    }

    fn select_victim(&mut self, _set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        Decision::Evict((self.state % u64::from(self.ways)) as u16)
    }

    fn on_hit(&mut self, _set: u32, _way: u16, _access: &Access) {}

    fn on_fill(&mut self, _set: u32, _way: u16, _access: &Access) {}

    fn overhead_bits(&self, _config: &CacheConfig) -> u64 {
        0
    }

    fn uses_line_snapshots(&self) -> bool {
        false // purely xorshift-driven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;

    fn access(addr: u64) -> Access {
        Access { pc: 0, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn snapshot(n: usize) -> Vec<LineSnapshot> {
        (0..n)
            .map(|i| LineSnapshot { valid: true, line: i as u64, dirty: false, core: 0 })
            .collect()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cfg = CacheConfig { sets: 1, ways: 4, latency: 1 };
        let mut lru = TrueLru::new(&cfg);
        for way in 0..4 {
            lru.on_fill(0, way, &access(way as u64 * 64));
        }
        lru.on_hit(0, 0, &access(0)); // way 0 becomes MRU; way 1 is now LRU
        match lru.select_victim(0, &snapshot(4), &access(999 * 64)) {
            Decision::Evict(w) => assert_eq!(w, 1),
            Decision::Bypass => panic!("LRU never bypasses"),
        }
    }

    #[test]
    fn lru_overhead_matches_table_i() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let lru = TrueLru::new(&cfg);
        // Table I: 16 KB for LRU in a 16-way 2 MB cache.
        assert_eq!(lru.overhead_bits(&cfg), 16 * 1024 * 8);
    }

    #[test]
    fn random_victims_are_in_range() {
        let cfg = CacheConfig { sets: 2, ways: 8, latency: 1 };
        let mut r = RandomLite::new(&cfg);
        for i in 0..100 {
            match r.select_victim(0, &snapshot(8), &access(i * 64)) {
                Decision::Evict(w) => assert!(w < 8),
                Decision::Bypass => panic!("RandomLite never bypasses"),
            }
        }
    }
}
