//! Single-core and multi-core simulation drivers.

use workloads::TraceEntry;

use crate::config::SystemConfig;
use crate::dram::DramTiming;
use crate::event::MemTraffic;
use crate::hierarchy::{CoreHierarchy, SharedLlc};
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;
use crate::timing::{TimingMode, TimingModel};

/// Results of one simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Instructions retired in the measured phase.
    pub instructions: u64,
    /// Cycles elapsed in the measured phase.
    pub cycles: u64,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Shared LLC statistics (whole LLC; in multi-core runs this is the
    /// same object reported for every core).
    pub llc: CacheStats,
    /// Lines fetched from main memory.
    pub memory_reads: u64,
    /// Dirty lines written to main memory.
    pub memory_writes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses.
    pub dram_row_misses: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC demand (load + RFO) misses per kilo-instruction — the paper's
    /// MPKI metric (Fig. 12).
    pub fn llc_demand_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc.demand_misses() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// LLC demand hit rate in percent (Fig. 1's metric).
    pub fn llc_hit_rate_pct(&self) -> f64 {
        self.llc.demand_hit_rate() * 100.0
    }

    /// DRAM row-buffer hit rate in `[0, 1]`.
    pub fn dram_row_hit_rate(&self) -> f64 {
        let total = self.dram_row_hits + self.dram_row_misses;
        if total == 0 {
            0.0
        } else {
            self.dram_row_hits as f64 / total as f64
        }
    }

    /// IPC speedup of `self` over a `baseline` run, in percent.
    pub fn speedup_pct_over(&self, baseline: &RunStats) -> f64 {
        (self.ipc() / baseline.ipc() - 1.0) * 100.0
    }
}

/// Runs one core's entry through the hierarchy and timing model.
///
/// Event-mode ordering rule (deterministic by construction): the fetch and
/// demand charges land first — they are the critical path — then the
/// background traffic the op generated (prefetch fills, writebacks) queues
/// on the DRAM banks in the functional order the LLC emitted it.
fn step<P: ReplacementPolicy>(
    entry: &TraceEntry,
    hierarchy: &mut CoreHierarchy,
    timing: &mut TimingModel,
    llc: &mut SharedLlc<P>,
    dram: &mut DramTiming,
    traffic: &mut Vec<MemTraffic>,
    config: &SystemConfig,
) {
    let fetch_level = hierarchy.instr_fetch(entry.pc, llc);
    timing.instr_fetch(fetch_level, entry.pc >> 6, dram, config);
    timing.retire(entry.leading);
    let level = hierarchy.data_access(entry.pc, entry.addr, entry.is_store, llc);
    timing.memory_op(level, entry.dependent, entry.addr >> 6, dram, config);
    if timing.mode() == TimingMode::Event {
        traffic.clear();
        llc.drain_traffic(traffic);
        timing.background(traffic, dram);
    }
}

/// A single core over the full hierarchy, with a pluggable LLC policy.
///
/// ```
/// use cache_sim::{SingleCoreSystem, SystemConfig, TrueLru};
/// use workloads::{Recipe, Workload};
///
/// let cfg = SystemConfig::paper_single_core();
/// let wl = Workload::new("loop", Recipe::Cyclic { bytes: 1 << 16, stride: 64, store_ratio: 0.0 });
/// let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
/// let stats = sys.run(wl.stream(), 20_000);
/// assert!(stats.instructions >= 20_000);
/// ```
pub struct SingleCoreSystem<P: ReplacementPolicy = Box<dyn ReplacementPolicy>> {
    config: SystemConfig,
    hierarchy: CoreHierarchy,
    llc: SharedLlc<P>,
    timing: TimingModel,
    dram_timing: DramTiming,
    traffic: Vec<MemTraffic>,
}

impl<P: ReplacementPolicy> SingleCoreSystem<P> {
    /// Creates the system with the given LLC replacement policy.
    pub fn new(config: &SystemConfig, policy: P) -> Self {
        let mut llc = SharedLlc::new(config, policy);
        if config.timing == TimingMode::Event {
            llc.enable_traffic_tap();
        }
        Self {
            config: *config,
            hierarchy: CoreHierarchy::new(0, config),
            llc,
            timing: TimingModel::new(config),
            dram_timing: DramTiming::new(config),
            traffic: Vec::new(),
        }
    }

    /// Access to the shared LLC (e.g. to enable trace capture).
    pub fn llc_mut(&mut self) -> &mut SharedLlc<P> {
        &mut self.llc
    }

    /// Read access to the shared LLC.
    pub fn llc(&self) -> &SharedLlc<P> {
        &self.llc
    }

    /// Runs `instructions` of the stream to warm the caches, then zeroes
    /// all statistics. Mirrors the paper's 200M-instruction warm-up.
    ///
    /// Deliberately consumes the stream one entry at a time: warm-up and
    /// the measured phase share one iterator, so any look-ahead batching
    /// here would shift the warm-up/measure boundary and change results.
    /// Batched replay belongs to pure trace-replay paths
    /// ([`SetAssocCache::access_batch`](crate::SetAssocCache::access_batch),
    /// [`SharedLlc::access_batch`]).
    pub fn warm_up<I: Iterator<Item = TraceEntry>>(&mut self, stream: &mut I, instructions: u64) {
        let mut local = TimingModel::new(&self.config);
        while local.instructions() < instructions {
            let entry = stream.next().expect("workload streams are infinite");
            step(
                &entry,
                &mut self.hierarchy,
                &mut local,
                &mut self.llc,
                &mut self.dram_timing,
                &mut self.traffic,
                &self.config,
            );
        }
        self.hierarchy.reset_stats();
        self.llc.reset_stats();
        self.timing = TimingModel::new(&self.config);
        // The warm-up clock is discarded with its timing model; queued bank
        // work is anchored to that clock, so it goes too.
        self.dram_timing.reset();
    }

    /// Runs at least `instructions` instructions and returns the measured
    /// statistics.
    pub fn run<I: Iterator<Item = TraceEntry>>(&mut self, mut stream: I, instructions: u64) -> RunStats {
        while self.timing.instructions() < instructions {
            let entry = stream.next().expect("workload streams are infinite");
            step(
                &entry,
                &mut self.hierarchy,
                &mut self.timing,
                &mut self.llc,
                &mut self.dram_timing,
                &mut self.traffic,
                &self.config,
            );
        }
        self.timing.finish();
        RunStats {
            instructions: self.timing.instructions(),
            cycles: self.timing.cycles(),
            l1d: *self.hierarchy.l1d_stats(),
            l2: *self.hierarchy.l2_stats(),
            llc: *self.llc.stats(),
            memory_reads: self.llc.memory_reads(),
            memory_writes: self.llc.memory_writes(),
            dram_row_hits: self.llc.dram().row_hits(),
            dram_row_misses: self.llc.dram().row_misses(),
        }
    }
}

impl<P: ReplacementPolicy> std::fmt::Debug for SingleCoreSystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleCoreSystem").field("llc", &self.llc).finish()
    }
}

struct CoreSlot {
    hierarchy: CoreHierarchy,
    timing: TimingModel,
    stream: Box<dyn Iterator<Item = TraceEntry> + Send>,
    /// Cycles snapshot taken when the core crossed the instruction target.
    finished: Option<(u64, u64)>,
}

/// A multi-programmed system: one workload per core over a shared LLC.
///
/// Cores advance in global cycle order (the core with the fewest elapsed
/// cycles executes next), interleaving their LLC traffic realistically.
/// When a core reaches the instruction target its statistics are frozen,
/// but it keeps executing to provide interference until every core has
/// finished — mirroring the paper's methodology of wrapping traces.
pub struct MultiCoreSystem<P: ReplacementPolicy = Box<dyn ReplacementPolicy>> {
    config: SystemConfig,
    llc: SharedLlc<P>,
    cores: Vec<CoreSlot>,
    /// One shared bank-timing model: cross-core DRAM contention is part of
    /// what the event mode measures. Core clocks are kept loosely in sync
    /// by the fewest-cycles-first scheduler.
    dram_timing: DramTiming,
    traffic: Vec<MemTraffic>,
}

impl<P: ReplacementPolicy> MultiCoreSystem<P> {
    /// Creates the system; `streams[i]` feeds core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len()` does not match `config.cores`.
    pub fn new(
        config: &SystemConfig,
        policy: P,
        streams: Vec<Box<dyn Iterator<Item = TraceEntry> + Send>>,
    ) -> Self {
        assert_eq!(
            streams.len(),
            config.cores as usize,
            "need exactly one stream per core"
        );
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, stream)| CoreSlot {
                hierarchy: CoreHierarchy::new(i as u8, config),
                timing: TimingModel::new(config),
                stream,
                finished: None,
            })
            .collect();
        let mut llc = SharedLlc::new(config, policy);
        if config.timing == TimingMode::Event {
            llc.enable_traffic_tap();
        }
        Self {
            config: *config,
            llc,
            cores,
            dram_timing: DramTiming::new(config),
            traffic: Vec::new(),
        }
    }

    /// Access to the shared LLC.
    pub fn llc_mut(&mut self) -> &mut SharedLlc<P> {
        &mut self.llc
    }

    /// Interleaves all cores until each has retired `instructions`, with an
    /// initial `warm_up` phase whose statistics are discarded. Returns one
    /// [`RunStats`] per core (LLC fields are shared totals).
    pub fn run(&mut self, warm_up: u64, instructions: u64) -> Vec<RunStats> {
        if warm_up > 0 {
            self.warm_up(warm_up);
        }
        self.run_until(instructions)
    }

    /// Runs a warm-up phase alone and discards its statistics — the
    /// `warm_up` prefix of [`run`](MultiCoreSystem::run), split out so
    /// callers can change LLC state between warm-up and measurement (for
    /// example, enable trace capture only for the measured phase).
    pub fn warm_up(&mut self, instructions: u64) {
        self.run_phase(instructions);
        for core in &mut self.cores {
            core.hierarchy.reset_stats();
            core.timing = TimingModel::new(&self.config);
            core.finished = None;
        }
        self.llc.reset_stats();
        self.dram_timing.reset();
    }

    /// Runs every core to the *absolute* retired-instruction target,
    /// clearing the per-core finish latches first so repeated calls with a
    /// growing target advance the same system incrementally (the slice
    /// loop of a capped trace capture). Statistics accumulate across
    /// calls.
    pub fn run_until(&mut self, instructions: u64) -> Vec<RunStats> {
        for core in &mut self.cores {
            core.finished = None;
        }
        self.run_phase(instructions);
        self.cores
            .iter()
            .map(|core| {
                let (instrs, cycles) =
                    core.finished.expect("run_phase finishes every core");
                RunStats {
                    instructions: instrs,
                    cycles,
                    l1d: *core.hierarchy.l1d_stats(),
                    l2: *core.hierarchy.l2_stats(),
                    llc: *self.llc.stats(),
                    memory_reads: self.llc.memory_reads(),
                    memory_writes: self.llc.memory_writes(),
                    dram_row_hits: self.llc.dram().row_hits(),
                    dram_row_misses: self.llc.dram().row_misses(),
                }
            })
            .collect()
    }

    fn run_phase(&mut self, instructions: u64) {
        loop {
            // Advance the core with the fewest elapsed cycles; finished
            // cores keep running to generate interference.
            let mut next: Option<(usize, u64)> = None;
            let mut all_done = true;
            for (i, core) in self.cores.iter().enumerate() {
                if core.finished.is_none() {
                    all_done = false;
                }
                let c = core.timing.cycles();
                if next.is_none_or(|(_, best)| c < best) {
                    next = Some((i, c));
                }
            }
            if all_done {
                break;
            }
            let (i, _) = next.expect("at least one core exists");
            let core = &mut self.cores[i];
            let entry = core.stream.next().expect("workload streams are infinite");
            step(
                &entry,
                &mut core.hierarchy,
                &mut core.timing,
                &mut self.llc,
                &mut self.dram_timing,
                &mut self.traffic,
                &self.config,
            );
            if core.finished.is_none() && core.timing.instructions() >= instructions {
                let mut t = core.timing.clone();
                t.finish();
                core.finished = Some((t.instructions(), t.cycles()));
            }
        }
    }
}

impl<P: ReplacementPolicy> std::fmt::Debug for MultiCoreSystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSystem")
            .field("cores", &self.cores.len())
            .field("llc", &self.llc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::TrueLru;
    use workloads::{Recipe, Workload};

    fn small_loop(bytes: u64) -> Workload {
        Workload::new("loop", Recipe::Cyclic { bytes, stride: 64, store_ratio: 0.1 })
    }

    #[test]
    fn run_reaches_instruction_target() {
        let cfg = SystemConfig::paper_single_core();
        let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
        let stats = sys.run(small_loop(1 << 16).stream(), 10_000);
        assert!(stats.instructions >= 10_000);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn cache_resident_loop_has_high_ipc() {
        let cfg = SystemConfig::paper_single_core();
        let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
        let mut stream = small_loop(16 << 10).stream();
        sys.warm_up(&mut stream, 5_000);
        let stats = sys.run(stream, 20_000);
        assert!(stats.ipc() > 1.5, "L1-resident loop should be fast, ipc={}", stats.ipc());
    }

    #[test]
    fn memory_bound_chase_has_low_ipc() {
        let cfg = SystemConfig::paper_single_core();
        let wl = Workload::new("chase", Recipe::Chase { bytes: 64 << 20 }).with_compute(1, 2);
        let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
        let stats = sys.run(wl.stream(), 20_000);
        assert!(stats.ipc() < 0.5, "random chase must be memory bound, ipc={}", stats.ipc());
    }

    #[test]
    fn warm_up_discards_statistics_but_keeps_contents() {
        let cfg = SystemConfig::paper_single_core();
        let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
        let mut stream = small_loop(8 << 10).stream();
        sys.warm_up(&mut stream, 10_000);
        assert_eq!(sys.llc().stats().accesses(), 0);
        let stats = sys.run(stream, 10_000);
        // After warming, the small loop (plus the stack region) is resident:
        // overwhelmingly L1 hits.
        assert!(stats.l1d.hit_rate() > 0.9, "l1d hit rate = {}", stats.l1d.hit_rate());
    }

    #[test]
    fn multicore_runs_all_cores_to_target() {
        let cfg = SystemConfig::paper_quad_core();
        let streams: Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> = (0..4)
            .map(|i| {
                Box::new(small_loop(1 << 20).with_seed(i).stream())
                    as Box<dyn Iterator<Item = TraceEntry> + Send>
            })
            .collect();
        let mut sys = MultiCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)), streams);
        let per_core = sys.run(1_000, 5_000);
        assert_eq!(per_core.len(), 4);
        for s in &per_core {
            assert!(s.instructions >= 5_000);
            assert!(s.cycles > 0);
        }
    }

    #[test]
    #[should_panic(expected = "one stream per core")]
    fn multicore_stream_count_must_match() {
        let cfg = SystemConfig::paper_quad_core();
        let _ = MultiCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)), Vec::new());
    }

    #[test]
    fn event_mode_keeps_functional_counters_identical() {
        let analytic_cfg = SystemConfig::paper_single_core();
        let event_cfg = analytic_cfg.with_timing(TimingMode::Event);
        let run = |cfg: &SystemConfig| {
            let mut sys = SingleCoreSystem::new(cfg, Box::new(TrueLru::new(&cfg.llc)));
            let mut stream = small_loop(1 << 18).stream();
            sys.warm_up(&mut stream, 3_000);
            sys.run(stream, 10_000)
        };
        let a = run(&analytic_cfg);
        let e = run(&event_cfg);
        // Timing is a pure consumer: everything but cycles is identical.
        assert_eq!(a.instructions, e.instructions);
        assert_eq!(a.l1d, e.l1d);
        assert_eq!(a.l2, e.l2);
        assert_eq!(a.llc, e.llc);
        assert_eq!(a.memory_reads, e.memory_reads);
        assert_eq!(a.memory_writes, e.memory_writes);
        assert_eq!(a.dram_row_hits, e.dram_row_hits);
        assert!(e.cycles > 0);
    }

    #[test]
    fn event_mode_single_core_is_deterministic() {
        let cfg = SystemConfig::paper_single_core().with_timing(TimingMode::Event);
        let run = || {
            let wl = Workload::new("chase", Recipe::Chase { bytes: 8 << 20 }).with_compute(1, 2);
            let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
            sys.run(wl.stream(), 20_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_mode_multicore_runs_and_repeats() {
        let cfg = SystemConfig::paper_quad_core().with_timing(TimingMode::Event);
        let run = || {
            let streams: Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> = (0..4)
                .map(|i| {
                    Box::new(small_loop(1 << 20).with_seed(i).stream())
                        as Box<dyn Iterator<Item = TraceEntry> + Send>
                })
                .collect();
            let mut sys = MultiCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)), streams);
            sys.run(1_000, 5_000)
        };
        let first = run();
        assert_eq!(first.len(), 4);
        for s in &first {
            assert!(s.instructions >= 5_000);
            assert!(s.cycles > 0);
        }
        assert_eq!(first, run(), "shared-bank multicore timing must be deterministic");
    }

    #[test]
    fn speedup_helper_is_relative() {
        let a = RunStats { instructions: 1000, cycles: 500, ..RunStats::default() };
        let b = RunStats { instructions: 1000, cycles: 1000, ..RunStats::default() };
        assert!((a.speedup_pct_over(&b) - 100.0).abs() < 1e-9);
    }
}
