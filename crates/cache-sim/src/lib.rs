//! ChampSim-style cache hierarchy simulator.
//!
//! This crate is the substrate the RLR paper's evaluation runs on: a
//! three-level cache hierarchy (private L1I/L1D and L2 per core, shared
//! last-level cache) with pluggable LLC replacement policies, hardware
//! prefetchers (next-line at L1, IP-stride at L2, none at the LLC), and a
//! simplified out-of-order core timing model (3-issue, 256-entry ROB,
//! MSHR-limited memory-level parallelism) that converts cache behaviour into
//! IPC — mirroring Table III of the paper.
//!
//! The design deliberately separates *function* from *time*: caches are
//! simulated functionally in program order, so the LLC access stream is
//! identical for every LLC replacement policy. That invariant is what makes
//! the offline Belady oracle (and the RL agent's reward) exact.
//!
//! # Quick start
//!
//! ```
//! use cache_sim::{SingleCoreSystem, SystemConfig, TrueLru};
//! use workloads::spec2006;
//!
//! let config = SystemConfig::paper_single_core();
//! let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
//! let stats = system.run(spec2006("429.mcf").unwrap().stream(), 50_000);
//! assert!(stats.ipc() > 0.0);
//! ```

mod access;
mod cache;
mod capture;
mod config;
mod dram;
mod event;
mod hierarchy;
pub mod lanes;
mod prefetch;
pub mod reference;
mod replacement;
mod stats;
mod system;
mod timing;

pub use access::{Access, AccessKind};
pub use cache::{AccessOutcome, SetAssocCache};
pub use reference::ReferenceCache;
pub use capture::{LlcRecord, LlcTrace, TraceFormatError};
pub use dram::{DramModel, DramTiming};
pub use event::{EventCore, MemTraffic};
pub use config::{CacheConfig, L2PrefetcherKind, SystemConfig};
pub use hierarchy::{CoreHierarchy, DataRequest, LlcOutcome, ServiceLevel, SharedLlc};
pub use prefetch::{IpStridePrefetcher, KpcPrefetcher, NextLinePrefetcher, PrefetchRequest, Prefetcher};
pub use replacement::{Decision, LineSnapshot, RandomLite, ReplacementPolicy, TrueLru};
pub use stats::{CacheStats, KindCounts};
pub use system::{MultiCoreSystem, RunStats, SingleCoreSystem};
pub use timing::{CoreTiming, TimingMode, TimingModel};

/// Cache line size in bytes used throughout the simulator.
pub const LINE_BYTES: u64 = 64;
