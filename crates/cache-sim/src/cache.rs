//! A generic set-associative, write-back, write-allocate cache with a
//! pluggable replacement policy.
//!
//! This is the simulator's hot path. Two layout decisions keep it fast
//! without changing semantics (the [`crate::reference::ReferenceCache`]
//! oracle and the `dispatch_equivalence` test wall pin them down):
//!
//! * **Static dispatch.** The policy is a type parameter, so a concrete
//!   `SetAssocCache<TrueLru>` (or an enum of policies) monomorphizes every
//!   `on_hit`/`on_miss`/`select_victim`/`on_fill` call. The default
//!   parameter `Box<dyn ReplacementPolicy>` preserves the old dynamic
//!   behaviour for call sites that need runtime polymorphism.
//! * **Struct-of-arrays metadata.** Tags live in one contiguous `u64`
//!   array; valid and dirty bits are one `u32` bitmap per set. A lookup
//!   touches 8·ways bytes of tag plus 8 bytes of bitmap instead of
//!   24·ways bytes of `Line` structs, the invalid-way scan is a single
//!   `trailing_zeros`, and snapshot construction is skipped entirely for
//!   policies whose [`ReplacementPolicy::uses_line_snapshots`] is `false`.

use crate::access::{Access, AccessKind};
use crate::config::CacheConfig;
use crate::replacement::{Decision, LineSnapshot, ReplacementPolicy};
use crate::stats::CacheStats;

/// Maximum associativity supported without heap allocation on the victim
/// selection path (also the width of the per-set valid/dirty bitmaps).
pub(crate) const MAX_WAYS: usize = 32;

/// The result of one cache access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit.
    pub hit: bool,
    /// The way that served or received the line (`None` if bypassed).
    pub way: Option<u16>,
    /// The policy chose to bypass the fill.
    pub bypassed: bool,
    /// Line address of a dirty victim that must be written back below.
    pub writeback: Option<u64>,
    /// Line address of the evicted victim, dirty or clean.
    pub evicted: Option<u64>,
}

/// A set-associative cache.
///
/// Semantics, mirroring ChampSim's per-level behaviour:
///
/// * misses always allocate (write-allocate); writeback misses allocate the
///   line dirty without fetching from below,
/// * invalid ways are filled before the policy is consulted (lowest index
///   first),
/// * dirty victims produce a writeback to the level below,
/// * [`Decision::Bypass`] is honoured only when bypass is enabled and the
///   access is not a writeback.
///
/// ```
/// use cache_sim::{Access, AccessKind, CacheConfig, SetAssocCache, TrueLru};
///
/// let cfg = CacheConfig { sets: 2, ways: 2, latency: 1 };
/// // Statically dispatched: P = TrueLru.
/// let mut cache = SetAssocCache::new("L1D", cfg, TrueLru::new(&cfg));
/// let a = Access { pc: 0, addr: 0x80, kind: AccessKind::Load, core: 0, seq: 0 };
/// assert!(!cache.access(&a).hit); // cold miss
/// assert!(cache.access(&a).hit); // now resident
/// ```
pub struct SetAssocCache<P: ReplacementPolicy = Box<dyn ReplacementPolicy>> {
    name: String,
    config: CacheConfig,
    /// Line address stored in each way, indexed `set * ways + way`.
    /// Meaningful only where the corresponding valid bit is set.
    tags: Vec<u64>,
    /// Core that inserted or last touched each line.
    cores: Vec<u8>,
    /// Per-set valid bitmap (bit `w` = way `w` holds a line).
    valid: Vec<u32>,
    /// Per-set dirty bitmap.
    dirty: Vec<u32>,
    /// Precomputed `sets - 1` for set indexing.
    set_mask: u64,
    /// Precomputed `(1 << ways) - 1`.
    ways_mask: u32,
    policy: P,
    /// Cached [`ReplacementPolicy::uses_line_snapshots`], fixed at
    /// construction.
    wants_snapshots: bool,
    stats: CacheStats,
    allow_bypass: bool,
    /// If set, RFO accesses dirty the line (used at L1, where RFO models a
    /// store; at L2/LLC an RFO is a read and data is dirtied only by a
    /// later writeback).
    rfo_dirties: bool,
}

impl<P: ReplacementPolicy> SetAssocCache<P> {
    /// Creates a cache with the given replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds the supported maximum (32).
    pub fn new(name: impl Into<String>, config: CacheConfig, policy: P) -> Self {
        assert!(
            (config.ways as usize) <= MAX_WAYS,
            "associativity above {MAX_WAYS} is not supported"
        );
        let wants_snapshots = policy.uses_line_snapshots();
        Self {
            name: name.into(),
            config,
            tags: vec![0; config.lines() as usize],
            cores: vec![0; config.lines() as usize],
            valid: vec![0; config.sets as usize],
            dirty: vec![0; config.sets as usize],
            set_mask: u64::from(config.sets - 1),
            ways_mask: if config.ways as usize == MAX_WAYS {
                u32::MAX
            } else {
                (1u32 << config.ways) - 1
            },
            policy,
            wants_snapshots,
            stats: CacheStats::default(),
            allow_bypass: false,
            rfo_dirties: false,
        }
    }

    /// Enables honouring [`Decision::Bypass`] from the policy.
    pub fn set_allow_bypass(&mut self, allow: bool) {
        self.allow_bypass = allow;
    }

    /// Makes RFO accesses mark lines dirty (L1 store semantics).
    pub fn set_rfo_dirties(&mut self, dirties: bool) {
        self.rfo_dirties = dirties;
    }

    /// The cache's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are preserved), used at the end
    /// of a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The replacement policy (e.g. to read policy-specific counters).
    /// Statically typed: no trait object involved.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the replacement policy.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Returns whether `addr`'s line is resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> 6;
        let set = (line & self.set_mask) as usize;
        let base = set * self.config.ways as usize;
        let mut v = self.valid[set];
        while v != 0 {
            let w = v.trailing_zeros() as usize;
            if self.tags[base + w] == line {
                return true;
            }
            v &= v - 1;
        }
        false
    }

    /// Number of valid lines in `set` (drawn from the valid bitmap).
    pub fn occupancy(&self, set: u32) -> u32 {
        self.valid[set as usize].count_ones()
    }

    /// The full per-way state of one set, reconstructed from the packed
    /// arrays — used by invariant tests to cross-check the bitmaps against
    /// per-line state and by debugging tooling.
    pub fn set_snapshot(&self, set: u32) -> Vec<LineSnapshot> {
        let base = set as usize * self.config.ways as usize;
        let valid = self.valid[set as usize];
        let dirty = self.dirty[set as usize];
        (0..self.config.ways as usize)
            .map(|w| LineSnapshot {
                valid: valid & (1 << w) != 0,
                line: if valid & (1 << w) != 0 { self.tags[base + w] } else { 0 },
                dirty: dirty & (1 << w) != 0,
                core: self.cores[base + w],
            })
            .collect()
    }

    /// Performs one access: lookup, policy update, and fill on miss.
    #[inline]
    pub fn access(&mut self, access: &Access) -> AccessOutcome {
        let line = access.line();
        let set = (line & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;

        // Lookup: probe valid ways in ascending index order.
        let mut probe = self.valid[set];
        let mut hit_way = None;
        while probe != 0 {
            let w = probe.trailing_zeros();
            if self.tags[base + w as usize] == line {
                hit_way = Some(w as u16);
                break;
            }
            probe &= probe - 1;
        }

        if let Some(way) = hit_way {
            self.stats.record(access.kind, true);
            if access.kind == AccessKind::Writeback
                || (self.rfo_dirties && access.kind == AccessKind::Rfo)
            {
                self.dirty[set] |= 1 << way;
            }
            self.cores[base + way as usize] = access.core;
            self.policy.on_hit(set as u32, way, access);
            return AccessOutcome { hit: true, way: Some(way), ..AccessOutcome::default() };
        }

        self.stats.record(access.kind, false);
        self.policy.on_miss(set as u32, access);

        // Fill the lowest-index invalid way the policy's fill mask allows
        // (the default mask is all-ones, so unpartitioned policies keep the
        // plain invalid-way scan).
        let free = !self.valid[set] & self.ways_mask & self.policy.fill_mask(access);
        let (victim_way, mut outcome) = if free != 0 {
            let w = free.trailing_zeros() as u16;
            (w, AccessOutcome { hit: false, way: Some(w), ..AccessOutcome::default() })
        } else {
            let decision = if self.wants_snapshots {
                let valid = self.valid[set];
                let dirty = self.dirty[set];
                let mut snapshot =
                    [LineSnapshot { valid: false, line: 0, dirty: false, core: 0 }; MAX_WAYS];
                for (w, slot) in snapshot.iter_mut().enumerate().take(ways) {
                    // With an all-ones fill mask the set is full here, but a
                    // restrictive mask can leave ways outside the requestor's
                    // slice invalid — report them honestly.
                    let v = valid & (1 << w) != 0;
                    *slot = LineSnapshot {
                        valid: v,
                        line: if v { self.tags[base + w] } else { 0 },
                        dirty: dirty & (1 << w) != 0,
                        core: self.cores[base + w],
                    };
                }
                self.policy.select_victim(set as u32, &snapshot[..ways], access)
            } else {
                self.policy.select_victim(set as u32, &[], access)
            };
            match decision {
                Decision::Evict(w) => {
                    assert!(
                        (w as usize) < ways,
                        "policy {} chose way {w} of {ways} in cache {}",
                        self.policy.name(),
                        self.name
                    );
                    self.evict(set, base, w)
                }
                Decision::Bypass => {
                    if self.allow_bypass && access.kind != AccessKind::Writeback {
                        self.stats.bypasses += 1;
                        return AccessOutcome { hit: false, bypassed: true, ..AccessOutcome::default() };
                    }
                    // Bypass not permitted here: fall back deterministically.
                    self.evict(set, base, 0)
                }
            }
        };

        self.valid[set] |= 1 << victim_way;
        self.tags[base + victim_way as usize] = line;
        let dirties = access.kind == AccessKind::Writeback
            || (self.rfo_dirties && access.kind == AccessKind::Rfo);
        if dirties {
            self.dirty[set] |= 1 << victim_way;
        } else {
            self.dirty[set] &= !(1 << victim_way);
        }
        self.cores[base + victim_way as usize] = access.core;
        self.policy.on_fill(set as u32, victim_way, access);
        outcome.way = Some(victim_way);
        outcome
    }

    /// Evicts way `w` of a full `set`, accounting the writeback if dirty.
    #[inline]
    fn evict(&mut self, set: usize, base: usize, w: u16) -> (u16, AccessOutcome) {
        let victim_line = self.tags[base + w as usize];
        let writeback = (self.dirty[set] & (1 << w) != 0).then_some(victim_line);
        if writeback.is_some() {
            self.stats.writebacks_out += 1;
        }
        self.stats.evictions += 1;
        (
            w,
            AccessOutcome {
                hit: false,
                way: Some(w),
                writeback,
                evicted: Some(victim_line),
                ..AccessOutcome::default()
            },
        )
    }

    /// Replays a batch of accesses, appending one outcome per access to
    /// `outcomes` (which is *not* cleared). Trace-replay drivers use this
    /// to amortize per-call overhead; results are identical to calling
    /// [`access`](SetAssocCache::access) in a loop.
    pub fn access_batch(&mut self, accesses: &[Access], outcomes: &mut Vec<AccessOutcome>) {
        outcomes.reserve(accesses.len());
        for access in accesses {
            outcomes.push(self.access(access));
        }
    }
}

impl<P: ReplacementPolicy> std::fmt::Debug for SetAssocCache<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::TrueLru;

    fn cache(sets: u32, ways: u16) -> SetAssocCache<TrueLru> {
        let cfg = CacheConfig { sets, ways, latency: 1 };
        SetAssocCache::new("test", cfg, TrueLru::new(&cfg))
    }

    fn load(addr: u64) -> Access {
        Access { pc: 0x400, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn writeback(addr: u64) -> Access {
        Access { pc: 0, addr, kind: AccessKind::Writeback, core: 0, seq: 0 }
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = cache(1, 4);
        for i in 0..4 {
            let out = c.access(&load(i * 64));
            assert!(!out.hit);
            assert!(out.evicted.is_none(), "no eviction while ways are free");
        }
        let out = c.access(&load(4 * 64));
        assert!(out.evicted.is_some(), "full set must evict");
    }

    #[test]
    fn lru_eviction_order_in_cache() {
        let mut c = cache(1, 2);
        c.access(&load(0)); // A
        c.access(&load(64)); // B
        c.access(&load(0)); // touch A
        let out = c.access(&load(128)); // must evict B
        assert_eq!(out.evicted, Some(1));
        assert!(c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn writeback_allocates_dirty_and_evicts_with_writeback() {
        let mut c = cache(1, 1);
        let out = c.access(&writeback(0));
        assert!(!out.hit);
        assert!(out.writeback.is_none());
        // Evicting the dirty line must produce a writeback below.
        let out = c.access(&load(64));
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = cache(1, 1);
        c.access(&load(0));
        let out = c.access(&load(64));
        assert!(out.writeback.is_none());
        assert_eq!(out.evicted, Some(0));
    }

    #[test]
    fn rfo_dirties_only_when_configured() {
        let mut l1 = cache(1, 2);
        l1.set_rfo_dirties(true);
        let rfo = Access { pc: 0, addr: 0, kind: AccessKind::Rfo, core: 0, seq: 0 };
        l1.access(&rfo);
        l1.access(&load(64));
        let out = l1.access(&load(128)); // evicts the RFO line (LRU)
        assert_eq!(out.writeback, Some(0), "L1 store line must be dirty");

        let mut l2 = cache(1, 2);
        let rfo2 = Access { pc: 0, addr: 0, kind: AccessKind::Rfo, core: 0, seq: 0 };
        l2.access(&rfo2);
        l2.access(&load(64));
        let out = l2.access(&load(128));
        assert!(out.writeback.is_none(), "L2 RFO line is clean until written back");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = cache(4, 2);
        c.access(&load(0));
        c.access(&load(0));
        c.access(&load(64 * 4)); // same set 0, different tag
        assert_eq!(c.stats().accesses(), 3);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn same_line_different_sets_do_not_alias() {
        let mut c = cache(2, 1);
        c.access(&load(0)); // set 0
        c.access(&load(64)); // set 1
        assert!(c.contains(0));
        assert!(c.contains(64));
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = cache(2, 2);
        c.access(&load(0));
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(&load(0)).hit, "contents survive stats reset");
    }

    #[test]
    fn boxed_policy_still_works_via_default_parameter() {
        let cfg = CacheConfig { sets: 2, ways: 2, latency: 1 };
        let mut c: SetAssocCache =
            SetAssocCache::new("dyn", cfg, Box::new(TrueLru::new(&cfg)) as Box<dyn ReplacementPolicy>);
        assert!(!c.access(&load(0)).hit);
        assert!(c.access(&load(0)).hit);
        assert_eq!(c.policy().name(), "LRU");
    }

    #[test]
    fn occupancy_follows_fills_and_full_width_sets_work() {
        // 32 ways exercises the full bitmap width (ways_mask == u32::MAX).
        let mut c = cache(1, 32);
        for i in 0..32 {
            c.access(&load(i * 64));
            assert_eq!(c.occupancy(0), i as u32 + 1);
        }
        let out = c.access(&load(32 * 64));
        assert!(out.evicted.is_some());
        assert_eq!(c.occupancy(0), 32);
    }

    /// LRU confined to a fixed slice of each set via `fill_mask`: victim
    /// selection considers only masked ways, mirroring what a partitioning
    /// policy does with the masked victim scan.
    struct SlicedLru {
        stamps: Vec<u64>,
        ways: u16,
        clock: u64,
        mask: u32,
    }

    impl ReplacementPolicy for SlicedLru {
        fn name(&self) -> String {
            "SlicedLRU".to_owned()
        }

        fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
            let base = set as usize * usize::from(self.ways);
            let w = (0..self.ways)
                .filter(|&w| self.mask & (1 << w) != 0)
                .min_by_key(|&w| self.stamps[base + usize::from(w)])
                .expect("mask has eligible ways");
            Decision::Evict(w)
        }

        fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
            self.clock += 1;
            self.stamps[set as usize * usize::from(self.ways) + usize::from(way)] = self.clock;
        }

        fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
            assert!(self.mask & (1 << way) != 0, "fill escaped the slice");
            self.clock += 1;
            self.stamps[set as usize * usize::from(self.ways) + usize::from(way)] = self.clock;
        }

        fn overhead_bits(&self, config: &CacheConfig) -> u64 {
            config.lines() * u64::from(config.way_bits())
        }

        fn uses_line_snapshots(&self) -> bool {
            false
        }

        fn fill_mask(&self, _access: &Access) -> u32 {
            self.mask
        }
    }

    #[test]
    fn fill_mask_confines_fills_to_the_masked_ways() {
        let cfg = CacheConfig { sets: 1, ways: 4, latency: 1 };
        // Only ways 1 and 2 are eligible.
        let mut c = SetAssocCache::new(
            "sliced",
            cfg,
            SlicedLru { stamps: vec![0; cfg.lines() as usize], ways: cfg.ways, clock: 0, mask: 0b0110 },
        );
        for i in 0..8 {
            let out = c.access(&load(i * 64));
            let w = out.way.expect("filled");
            assert!(0b0110 & (1 << w) != 0, "fill landed outside the mask");
        }
        // Ways outside the slice never became valid.
        assert_eq!(c.occupancy(0), 2);
        // Evictions started once the two masked ways were exhausted.
        assert_eq!(c.stats().evictions, 6);
    }

    #[test]
    fn batch_matches_singles() {
        let accesses: Vec<Access> =
            (0..64u64).map(|i| load((i % 24) * 64)).collect();
        let mut one = cache(2, 4);
        let singles: Vec<AccessOutcome> = accesses.iter().map(|a| one.access(a)).collect();
        let mut two = cache(2, 4);
        let mut batched = Vec::new();
        two.access_batch(&accesses, &mut batched);
        assert_eq!(singles, batched);
        assert_eq!(one.stats(), two.stats());
    }
}
