//! A generic set-associative, write-back, write-allocate cache with a
//! pluggable replacement policy.

use crate::access::{Access, AccessKind};
use crate::config::CacheConfig;
use crate::replacement::{Decision, LineSnapshot, ReplacementPolicy};
use crate::stats::CacheStats;

/// Maximum associativity supported without heap allocation on the victim
/// selection path.
const MAX_WAYS: usize = 32;

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    line: u64,
    dirty: bool,
    core: u8,
}

/// The result of one cache access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit.
    pub hit: bool,
    /// The way that served or received the line (`None` if bypassed).
    pub way: Option<u16>,
    /// The policy chose to bypass the fill.
    pub bypassed: bool,
    /// Line address of a dirty victim that must be written back below.
    pub writeback: Option<u64>,
    /// Line address of the evicted victim, dirty or clean.
    pub evicted: Option<u64>,
}

/// A set-associative cache.
///
/// Semantics, mirroring ChampSim's per-level behaviour:
///
/// * misses always allocate (write-allocate); writeback misses allocate the
///   line dirty without fetching from below,
/// * invalid ways are filled before the policy is consulted,
/// * dirty victims produce a writeback to the level below,
/// * [`Decision::Bypass`] is honoured only when bypass is enabled and the
///   access is not a writeback.
///
/// ```
/// use cache_sim::{Access, AccessKind, CacheConfig, SetAssocCache, TrueLru};
///
/// let cfg = CacheConfig { sets: 2, ways: 2, latency: 1 };
/// let mut cache = SetAssocCache::new("L1D", cfg, Box::new(TrueLru::new(&cfg)));
/// let a = Access { pc: 0, addr: 0x80, kind: AccessKind::Load, core: 0, seq: 0 };
/// assert!(!cache.access(&a).hit); // cold miss
/// assert!(cache.access(&a).hit); // now resident
/// ```
pub struct SetAssocCache {
    name: String,
    config: CacheConfig,
    lines: Vec<Line>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
    allow_bypass: bool,
    /// If set, RFO accesses dirty the line (used at L1, where RFO models a
    /// store; at L2/LLC an RFO is a read and data is dirtied only by a
    /// later writeback).
    rfo_dirties: bool,
}

impl SetAssocCache {
    /// Creates a cache with the given replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds the supported maximum (32).
    pub fn new(name: impl Into<String>, config: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        assert!(
            (config.ways as usize) <= MAX_WAYS,
            "associativity above {MAX_WAYS} is not supported"
        );
        Self {
            name: name.into(),
            config,
            lines: vec![Line::default(); config.lines() as usize],
            policy,
            stats: CacheStats::default(),
            allow_bypass: false,
            rfo_dirties: false,
        }
    }

    /// Enables honouring [`Decision::Bypass`] from the policy.
    pub fn set_allow_bypass(&mut self, allow: bool) {
        self.allow_bypass = allow;
    }

    /// Makes RFO accesses mark lines dirty (L1 store semantics).
    pub fn set_rfo_dirties(&mut self, dirties: bool) {
        self.rfo_dirties = dirties;
    }

    /// The cache's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are preserved), used at the end
    /// of a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The replacement policy (e.g. to read policy-specific counters).
    pub fn policy(&self) -> &dyn ReplacementPolicy {
        self.policy.as_ref()
    }

    /// Returns whether `addr`'s line is resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.config.set_of(addr);
        let line = addr >> 6;
        self.set_lines(set).iter().any(|l| l.valid && l.line == line)
    }

    fn set_base(&self, set: u32) -> usize {
        set as usize * self.config.ways as usize
    }

    fn set_lines(&self, set: u32) -> &[Line] {
        let base = self.set_base(set);
        &self.lines[base..base + self.config.ways as usize]
    }

    /// Performs one access: lookup, policy update, and fill on miss.
    pub fn access(&mut self, access: &Access) -> AccessOutcome {
        let set = self.config.set_of(access.addr);
        let line = access.line();
        let base = self.set_base(set);
        let ways = self.config.ways as usize;

        // Lookup.
        let mut hit_way = None;
        for w in 0..ways {
            let l = &self.lines[base + w];
            if l.valid && l.line == line {
                hit_way = Some(w as u16);
                break;
            }
        }

        if let Some(way) = hit_way {
            self.stats.record(access.kind, true);
            let l = &mut self.lines[base + way as usize];
            if access.kind == AccessKind::Writeback || (self.rfo_dirties && access.kind == AccessKind::Rfo) {
                l.dirty = true;
            }
            l.core = access.core;
            self.policy.on_hit(set, way, access);
            return AccessOutcome { hit: true, way: Some(way), ..AccessOutcome::default() };
        }

        self.stats.record(access.kind, false);
        self.policy.on_miss(set, access);

        // Fill an invalid way if one exists.
        let invalid_way = (0..ways).find(|&w| !self.lines[base + w].valid).map(|w| w as u16);
        let (victim_way, mut outcome) = if let Some(w) = invalid_way {
            (w, AccessOutcome { hit: false, way: Some(w), ..AccessOutcome::default() })
        } else {
            let mut snapshot = [LineSnapshot { valid: false, line: 0, dirty: false, core: 0 }; MAX_WAYS];
            for w in 0..ways {
                let l = &self.lines[base + w];
                snapshot[w] = LineSnapshot { valid: l.valid, line: l.line, dirty: l.dirty, core: l.core };
            }
            match self.policy.select_victim(set, &snapshot[..ways], access) {
                Decision::Evict(w) => {
                    assert!(
                        (w as usize) < ways,
                        "policy {} chose way {w} of {ways} in cache {}",
                        self.policy.name(),
                        self.name
                    );
                    let victim = self.lines[base + w as usize];
                    let writeback = victim.dirty.then_some(victim.line);
                    if writeback.is_some() {
                        self.stats.writebacks_out += 1;
                    }
                    self.stats.evictions += 1;
                    (
                        w,
                        AccessOutcome {
                            hit: false,
                            way: Some(w),
                            writeback,
                            evicted: Some(victim.line),
                            ..AccessOutcome::default()
                        },
                    )
                }
                Decision::Bypass => {
                    if self.allow_bypass && access.kind != AccessKind::Writeback {
                        self.stats.bypasses += 1;
                        return AccessOutcome { hit: false, bypassed: true, ..AccessOutcome::default() };
                    }
                    // Bypass not permitted here: fall back deterministically.
                    let victim = self.lines[base];
                    let writeback = victim.dirty.then_some(victim.line);
                    if writeback.is_some() {
                        self.stats.writebacks_out += 1;
                    }
                    self.stats.evictions += 1;
                    (
                        0,
                        AccessOutcome {
                            hit: false,
                            way: Some(0),
                            writeback,
                            evicted: Some(victim.line),
                            ..AccessOutcome::default()
                        },
                    )
                }
            }
        };

        let slot = &mut self.lines[base + victim_way as usize];
        slot.valid = true;
        slot.line = line;
        slot.dirty = access.kind == AccessKind::Writeback
            || (self.rfo_dirties && access.kind == AccessKind::Rfo);
        slot.core = access.core;
        self.policy.on_fill(set, victim_way, access);
        outcome.way = Some(victim_way);
        outcome
    }
}

impl std::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::TrueLru;

    fn cache(sets: u32, ways: u16) -> SetAssocCache {
        let cfg = CacheConfig { sets, ways, latency: 1 };
        SetAssocCache::new("test", cfg, Box::new(TrueLru::new(&cfg)))
    }

    fn load(addr: u64) -> Access {
        Access { pc: 0x400, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn writeback(addr: u64) -> Access {
        Access { pc: 0, addr, kind: AccessKind::Writeback, core: 0, seq: 0 }
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = cache(1, 4);
        for i in 0..4 {
            let out = c.access(&load(i * 64));
            assert!(!out.hit);
            assert!(out.evicted.is_none(), "no eviction while ways are free");
        }
        let out = c.access(&load(4 * 64));
        assert!(out.evicted.is_some(), "full set must evict");
    }

    #[test]
    fn lru_eviction_order_in_cache() {
        let mut c = cache(1, 2);
        c.access(&load(0)); // A
        c.access(&load(64)); // B
        c.access(&load(0)); // touch A
        let out = c.access(&load(128)); // must evict B
        assert_eq!(out.evicted, Some(1));
        assert!(c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn writeback_allocates_dirty_and_evicts_with_writeback() {
        let mut c = cache(1, 1);
        let out = c.access(&writeback(0));
        assert!(!out.hit);
        assert!(out.writeback.is_none());
        // Evicting the dirty line must produce a writeback below.
        let out = c.access(&load(64));
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = cache(1, 1);
        c.access(&load(0));
        let out = c.access(&load(64));
        assert!(out.writeback.is_none());
        assert_eq!(out.evicted, Some(0));
    }

    #[test]
    fn rfo_dirties_only_when_configured() {
        let mut l1 = cache(1, 2);
        l1.set_rfo_dirties(true);
        let rfo = Access { pc: 0, addr: 0, kind: AccessKind::Rfo, core: 0, seq: 0 };
        l1.access(&rfo);
        l1.access(&load(64));
        let out = l1.access(&load(128)); // evicts the RFO line (LRU)
        assert_eq!(out.writeback, Some(0), "L1 store line must be dirty");

        let mut l2 = cache(1, 2);
        let rfo2 = Access { pc: 0, addr: 0, kind: AccessKind::Rfo, core: 0, seq: 0 };
        l2.access(&rfo2);
        l2.access(&load(64));
        let out = l2.access(&load(128));
        assert!(out.writeback.is_none(), "L2 RFO line is clean until written back");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = cache(4, 2);
        c.access(&load(0));
        c.access(&load(0));
        c.access(&load(64 * 4)); // different set? same set 0 actually: set_of(256)=0 (4 sets) -> yes set 0
        assert_eq!(c.stats().accesses(), 3);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn same_line_different_sets_do_not_alias() {
        let mut c = cache(2, 1);
        c.access(&load(0)); // set 0
        c.access(&load(64)); // set 1
        assert!(c.contains(0));
        assert!(c.contains(64));
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = cache(2, 2);
        c.access(&load(0));
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(&load(0)).hit, "contents survive stats reset");
    }
}
