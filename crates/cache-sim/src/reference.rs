//! The pre-optimization cache implementation, kept verbatim as a
//! differential oracle.
//!
//! [`ReferenceCache`] is the array-of-structs, `Box<dyn>`-dispatched cache
//! that [`crate::SetAssocCache`] replaced. It is deliberately *not*
//! maintained for speed: its job is to define the semantics. The
//! `dispatch_equivalence` test wall replays identical access streams
//! through both implementations and asserts bit-identical
//! [`AccessOutcome`] streams and [`CacheStats`], and the `hotpath` bench
//! measures the new path's speedup against it. Any behavioural change to
//! the hot path must first be mirrored here (and justified), which keeps
//! Table I / Fig. 1–13 outputs byte-stable across performance work.

use crate::access::{Access, AccessKind};
use crate::cache::AccessOutcome;
use crate::config::CacheConfig;
use crate::replacement::{Decision, LineSnapshot, ReplacementPolicy};
use crate::stats::CacheStats;

/// Maximum associativity supported without heap allocation on the victim
/// selection path.
const MAX_WAYS: usize = 32;

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    line: u64,
    dirty: bool,
    core: u8,
}

/// The original set-associative cache: one `Line` struct per way, policy
/// behind a `Box<dyn ReplacementPolicy>`, a snapshot built for every
/// eviction. Semantically identical to [`crate::SetAssocCache`] by
/// construction (and by the differential test wall).
pub struct ReferenceCache {
    name: String,
    config: CacheConfig,
    lines: Vec<Line>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
    allow_bypass: bool,
    rfo_dirties: bool,
}

impl ReferenceCache {
    /// Creates a cache with the given replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds the supported maximum (32).
    pub fn new(
        name: impl Into<String>,
        config: CacheConfig,
        policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        assert!(
            (config.ways as usize) <= MAX_WAYS,
            "associativity above {MAX_WAYS} is not supported"
        );
        Self {
            name: name.into(),
            config,
            lines: vec![Line::default(); config.lines() as usize],
            policy,
            stats: CacheStats::default(),
            allow_bypass: false,
            rfo_dirties: false,
        }
    }

    /// Enables honouring [`Decision::Bypass`] from the policy.
    pub fn set_allow_bypass(&mut self, allow: bool) {
        self.allow_bypass = allow;
    }

    /// Makes RFO accesses mark lines dirty (L1 store semantics).
    pub fn set_rfo_dirties(&mut self, dirties: bool) {
        self.rfo_dirties = dirties;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Returns whether `addr`'s line is resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.config.set_of(addr);
        let line = addr >> 6;
        self.set_lines(set).iter().any(|l| l.valid && l.line == line)
    }

    /// The (valid, line, dirty, core) state of one way, for cross-checking
    /// against the packed implementation.
    pub fn line_state(&self, set: u32, way: u16) -> LineSnapshot {
        let l = &self.lines[self.set_base(set) + way as usize];
        LineSnapshot { valid: l.valid, line: l.line, dirty: l.dirty, core: l.core }
    }

    fn set_base(&self, set: u32) -> usize {
        set as usize * self.config.ways as usize
    }

    fn set_lines(&self, set: u32) -> &[Line] {
        let base = self.set_base(set);
        &self.lines[base..base + self.config.ways as usize]
    }

    /// Performs one access: lookup, policy update, and fill on miss.
    pub fn access(&mut self, access: &Access) -> AccessOutcome {
        let set = self.config.set_of(access.addr);
        let line = access.line();
        let base = self.set_base(set);
        let ways = self.config.ways as usize;

        // Lookup.
        let mut hit_way = None;
        for w in 0..ways {
            let l = &self.lines[base + w];
            if l.valid && l.line == line {
                hit_way = Some(w as u16);
                break;
            }
        }

        if let Some(way) = hit_way {
            self.stats.record(access.kind, true);
            let l = &mut self.lines[base + way as usize];
            if access.kind == AccessKind::Writeback
                || (self.rfo_dirties && access.kind == AccessKind::Rfo)
            {
                l.dirty = true;
            }
            l.core = access.core;
            self.policy.on_hit(set, way, access);
            return AccessOutcome { hit: true, way: Some(way), ..AccessOutcome::default() };
        }

        self.stats.record(access.kind, false);
        self.policy.on_miss(set, access);

        // Fill an invalid way if one exists.
        let invalid_way = (0..ways).find(|&w| !self.lines[base + w].valid).map(|w| w as u16);
        let (victim_way, mut outcome) = if let Some(w) = invalid_way {
            (w, AccessOutcome { hit: false, way: Some(w), ..AccessOutcome::default() })
        } else {
            let mut snapshot = [LineSnapshot { valid: false, line: 0, dirty: false, core: 0 }; MAX_WAYS];
            for w in 0..ways {
                let l = &self.lines[base + w];
                snapshot[w] = LineSnapshot { valid: l.valid, line: l.line, dirty: l.dirty, core: l.core };
            }
            match self.policy.select_victim(set, &snapshot[..ways], access) {
                Decision::Evict(w) => {
                    assert!(
                        (w as usize) < ways,
                        "policy {} chose way {w} of {ways} in cache {}",
                        self.policy.name(),
                        self.name
                    );
                    let victim = self.lines[base + w as usize];
                    let writeback = victim.dirty.then_some(victim.line);
                    if writeback.is_some() {
                        self.stats.writebacks_out += 1;
                    }
                    self.stats.evictions += 1;
                    (
                        w,
                        AccessOutcome {
                            hit: false,
                            way: Some(w),
                            writeback,
                            evicted: Some(victim.line),
                            ..AccessOutcome::default()
                        },
                    )
                }
                Decision::Bypass => {
                    if self.allow_bypass && access.kind != AccessKind::Writeback {
                        self.stats.bypasses += 1;
                        return AccessOutcome { hit: false, bypassed: true, ..AccessOutcome::default() };
                    }
                    // Bypass not permitted here: fall back deterministically.
                    let victim = self.lines[base];
                    let writeback = victim.dirty.then_some(victim.line);
                    if writeback.is_some() {
                        self.stats.writebacks_out += 1;
                    }
                    self.stats.evictions += 1;
                    (
                        0,
                        AccessOutcome {
                            hit: false,
                            way: Some(0),
                            writeback,
                            evicted: Some(victim.line),
                            ..AccessOutcome::default()
                        },
                    )
                }
            }
        };

        let slot = &mut self.lines[base + victim_way as usize];
        slot.valid = true;
        slot.line = line;
        slot.dirty = access.kind == AccessKind::Writeback
            || (self.rfo_dirties && access.kind == AccessKind::Rfo);
        slot.core = access.core;
        self.policy.on_fill(set, victim_way, access);
        outcome.way = Some(victim_way);
        outcome
    }
}

impl std::fmt::Debug for ReferenceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceCache")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::TrueLru;

    fn load(addr: u64) -> Access {
        Access { pc: 0x400, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    #[test]
    fn reference_cache_keeps_old_semantics() {
        let cfg = CacheConfig { sets: 1, ways: 2, latency: 1 };
        let mut c = ReferenceCache::new("ref", cfg, Box::new(TrueLru::new(&cfg)));
        c.access(&load(0));
        c.access(&load(64));
        c.access(&load(0));
        let out = c.access(&load(128)); // LRU evicts line 1
        assert_eq!(out.evicted, Some(1));
        assert!(c.contains(0));
        assert!(!c.contains(64));
        assert_eq!(c.stats().accesses(), 4);
        assert_eq!(c.stats().hits(), 1);
    }
}
