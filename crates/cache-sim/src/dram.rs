//! A bank/row-buffer main-memory model.
//!
//! Each DRAM bank keeps one row open; an access to the open row is a *row
//! hit* (column access only), while any other access must precharge and
//! activate first (*row miss*). The model is functional — it tracks which
//! row each bank has open and classifies accesses — and feeds the timing
//! model two latency classes instead of one flat memory latency. Streams
//! (which walk rows sequentially) therefore see cheaper memory than
//! pointer chasing, as on real hardware.

use crate::config::SystemConfig;

/// Default bank count (a typical DDR4 single-rank shape).
const DEFAULT_BANKS: u32 = 16;
/// Default 8 KB row = 128 cache lines.
const DEFAULT_ROW_LINES: u32 = 128;

/// The bank/row-buffer state of main memory.
#[derive(Clone, Debug)]
pub struct DramModel {
    /// Open row per bank (`u64::MAX` = closed).
    open_rows: Vec<u64>,
    row_lines: u64,
    row_hits: u64,
    row_misses: u64,
}

impl DramModel {
    /// Creates a model with `banks` banks and `row_lines` cache lines per
    /// row (rounded up to powers of two).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(banks: u32, row_lines: u32) -> Self {
        assert!(banks > 0 && row_lines > 0, "DRAM geometry must be positive");
        Self {
            open_rows: vec![u64::MAX; banks.next_power_of_two() as usize],
            row_lines: u64::from(row_lines.next_power_of_two()),
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Performs one access for the cache line at `line` (byte address
    /// >> 6); returns `true` on a row-buffer hit.
    ///
    /// Rows are interleaved across banks (`bank = row % banks`), the
    /// standard mapping that spreads sequential rows over the chip.
    pub fn access(&mut self, line: u64) -> bool {
        let row = line / self.row_lines;
        let bank = (row % self.open_rows.len() as u64) as usize;
        let hit = self.open_rows[bank] == row;
        self.open_rows[bank] = row;
        if hit {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
        }
        hit
    }

    /// Row-buffer hits so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses so far.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Zeroes the statistics (open-row state is preserved).
    pub fn reset_stats(&mut self) {
        self.row_hits = 0;
        self.row_misses = 0;
    }
}

impl Default for DramModel {
    fn default() -> Self {
        Self::new(DEFAULT_BANKS, DEFAULT_ROW_LINES)
    }
}

/// Per-bank DRAM service timing for the event core: each bank is busy
/// until its last request completes, so requests mapping to the same bank
/// serialize while requests to distinct banks overlap.
///
/// This is the *timing* companion of [`DramModel`], with the same default
/// geometry and bank mapping. Row-hit/miss classification stays with the
/// functional model (which runs in program order and therefore never
/// depends on timing); [`DramTiming`] only turns that classification plus
/// an arrival time into a completion time. All times are in the timing
/// layer's integer sub-slot ticks — callers never convert units, they pass
/// times from [`crate::EventCore`] straight through.
#[derive(Clone, Debug)]
pub struct DramTiming {
    /// Tick at which each bank becomes idle.
    busy_until: Vec<u64>,
    row_lines: u64,
    /// Row-buffer-hit service time in ticks (column access only).
    row_hit_ticks: u64,
    /// Row-buffer-miss service time in ticks (precharge + activate +
    /// column access).
    row_miss_ticks: u64,
}

impl DramTiming {
    /// Creates the bank timing for `config`, mirroring the functional
    /// model's default geometry.
    pub fn new(config: &SystemConfig) -> Self {
        let scale = crate::timing::ticks_per_cycle(config);
        Self {
            busy_until: vec![0; DEFAULT_BANKS.next_power_of_two() as usize],
            row_lines: u64::from(DEFAULT_ROW_LINES),
            row_hit_ticks: u64::from(config.memory_row_hit_latency) * scale,
            row_miss_ticks: u64::from(config.memory_latency) * scale,
        }
    }

    /// Queues one request for the cache line at `line` arriving at the
    /// memory controller at tick `arrival`; returns its completion tick.
    /// The bank starts service when both the request has arrived and the
    /// bank is idle, and stays busy for the whole service time.
    pub fn request(&mut self, line: u64, arrival: u64, row_hit: bool) -> u64 {
        let row = line / self.row_lines;
        let bank = (row % self.busy_until.len() as u64) as usize;
        let service = if row_hit { self.row_hit_ticks } else { self.row_miss_ticks };
        let done = arrival.max(self.busy_until[bank]) + service;
        self.busy_until[bank] = done;
        done
    }

    /// Forgets all queued work (used when a warm-up phase's clock is
    /// discarded; bank *state* has no functional side to preserve).
    pub fn reset(&mut self) {
        self.busy_until.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_hit_the_open_row() {
        let mut d = DramModel::new(4, 128);
        assert!(!d.access(0), "first touch activates the row");
        for line in 1..128 {
            assert!(d.access(line), "line {line} is in the open row");
        }
        assert!(!d.access(128), "next row must activate");
        assert_eq!(d.row_misses(), 2);
        assert_eq!(d.row_hits(), 127);
    }

    #[test]
    fn random_rows_mostly_miss() {
        let mut d = DramModel::new(16, 128);
        let mut hits = 0;
        for i in 0..1000u64 {
            // Jump a row every access.
            if d.access(i * 131 * 128) {
                hits += 1;
            }
        }
        assert!(hits < 50, "row-jumping traffic should rarely hit: {hits}");
    }

    #[test]
    fn banks_hold_independent_rows() {
        let mut d = DramModel::new(2, 1);
        // Rows 0 and 1 map to banks 0 and 1; alternating stays open.
        assert!(!d.access(0));
        assert!(!d.access(1));
        assert!(d.access(0));
        assert!(d.access(1));
    }

    #[test]
    fn bank_timing_serializes_same_bank_requests() {
        let cfg = SystemConfig::paper_single_core();
        let mut t = DramTiming::new(&cfg);
        let miss = u64::from(cfg.memory_latency) * crate::timing::ticks_per_cycle(&cfg);
        // Same line twice: second waits for the first.
        assert_eq!(t.request(0, 100, false), 100 + miss);
        assert_eq!(t.request(0, 100, false), 100 + 2 * miss);
        // A different bank is idle.
        assert_eq!(t.request(128, 100, false), 100 + miss);
    }

    #[test]
    fn bank_timing_reset_clears_queues() {
        let cfg = SystemConfig::paper_single_core();
        let mut t = DramTiming::new(&cfg);
        let _ = t.request(0, 1000, false);
        t.reset();
        let miss = u64::from(cfg.memory_latency) * crate::timing::ticks_per_cycle(&cfg);
        assert_eq!(t.request(0, 0, false), miss);
    }

    #[test]
    fn stats_reset_preserves_open_rows() {
        let mut d = DramModel::new(4, 128);
        let _ = d.access(0);
        d.reset_stats();
        assert_eq!(d.row_misses(), 0);
        assert!(d.access(1), "row stayed open across the stats reset");
    }
}
