//! Discrete-event core timing: simulated time from a pending-miss queue
//! and per-bank DRAM busy-until queues.
//!
//! The analytic model ([`crate::CoreTiming`]) charges every memory access a
//! constant latency for its service level; it cannot express *contention* —
//! two misses racing to the same DRAM bank, or dirty writebacks stealing
//! bank time from demand reads. [`EventCore`] keeps the analytic model's
//! accounting structure (issue slots, MSHR allocate/release with
//! stall-on-full, ROB run-ahead limit, dependent-chain serialization) but
//! takes every long-latency completion time from [`DramTiming`]: a request
//! arrives at the memory controller after the cumulative L1+L2+LLC latency,
//! waits for its bank to go idle, then occupies it for the row-hit or
//! row-miss service time. Background traffic — prefetch fills and dirty
//! writebacks recorded by the [`crate::SharedLlc`] traffic tap
//! ([`MemTraffic`]) — occupies the same banks without stalling the core,
//! which is exactly the writeback backpressure the analytic formula lacks.
//!
//! **Determinism.** All time is integer sub-slots (see
//! `timing::ticks_per_cycle`), requests are issued in program order by a
//! deterministic driver, and the bank queues are plain `max`/`add` over
//! u64 — so event-mode cycle counts are bit-reproducible across runs and
//! platforms. Crucially the *functional* path is untouched: row-hit/miss
//! classification still comes from the program-order [`crate::DramModel`],
//! so hit/miss counters, captures, and oracle results are byte-identical
//! to analytic mode (the differential suite in `experiments` locks this).

use std::collections::VecDeque;

use crate::config::SystemConfig;
use crate::dram::DramTiming;
use crate::hierarchy::ServiceLevel;
use crate::timing::{ticks_per_cycle, Outstanding, L2_EXPOSED_CYCLES};

/// One memory-bound request recorded by the [`crate::SharedLlc`] traffic
/// tap: a line the LLC read from or wrote to DRAM *besides* the demand
/// read the timing driver charges directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemTraffic {
    /// Cache line (byte address >> 6), for bank mapping.
    pub line: u64,
    /// `true` for a dirty writeback, `false` for a prefetch fill read.
    pub write: bool,
    /// Row-buffer outcome classified by the functional [`crate::DramModel`]
    /// at access time (program order).
    pub row_hit: bool,
}

/// A cycle-stepped out-of-order core model driven by DRAM bank timing.
///
/// ```
/// use cache_sim::{DramTiming, EventCore, ServiceLevel, SystemConfig};
///
/// let cfg = SystemConfig::paper_single_core();
/// let mut dram = DramTiming::new(&cfg);
/// let mut core = EventCore::new(&cfg);
/// core.retire(300);
/// core.memory_op(ServiceLevel::Memory, false, 0x1234, &mut dram);
/// core.finish();
/// assert!(core.cycles() >= 242); // at least the uncontended miss latency
/// ```
#[derive(Clone, Debug)]
pub struct EventCore {
    /// Sub-slots per cycle (`2 × issue_width`).
    scale: u64,
    rob_entries: u64,
    mshrs: usize,
    /// Cumulative L1+L2+LLC latency in sub-slots: the LLC hit service
    /// time, and the time for a miss to reach the memory controller.
    llc_ticks: u64,
    /// Elapsed time in sub-slots.
    now: u64,
    instructions: u64,
    /// In-flight long-latency misses, in program order.
    pending: VecDeque<Outstanding>,
    last_long_done: u64,
}

impl EventCore {
    /// Creates the event core for `config`.
    pub fn new(config: &SystemConfig) -> Self {
        let scale = ticks_per_cycle(config);
        Self {
            scale,
            rob_entries: u64::from(config.rob_entries),
            mshrs: (config.mshrs as usize).max(1),
            llc_ticks: u64::from(ServiceLevel::Llc.latency(config)) * scale,
            now: 0,
            instructions: 0,
            pending: VecDeque::with_capacity(config.mshrs as usize),
            last_long_done: 0,
        }
    }

    /// Retires `n` non-memory instructions.
    pub fn retire(&mut self, n: u32) {
        self.instructions += u64::from(n);
        self.now += 2 * u64::from(n);
    }

    /// Misses still occupying an MSHR: issued, completion time in the
    /// future. Unlike the analytic model, completions release MSHRs out
    /// of program order — an entry stuck behind an older one in the ROB
    /// no longer holds its MSHR once its data is back.
    fn in_flight(&self) -> usize {
        self.pending.iter().filter(|o| o.done_at > self.now).count()
    }

    /// Retires completed misses from the head of the program-order queue.
    fn drain_completed(&mut self) {
        while let Some(front) = self.pending.front() {
            if front.done_at <= self.now {
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    /// Completion time of a long-latency access to `line`: LLC hits are a
    /// fixed pipeline latency; memory requests queue on their DRAM bank.
    fn long_done_at(&mut self, level: ServiceLevel, line: u64, dram: &mut DramTiming) -> u64 {
        match level {
            ServiceLevel::Llc => self.now + self.llc_ticks,
            ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                let arrival = self.now + self.llc_ticks;
                dram.request(line, arrival, level == ServiceLevel::MemoryRowHit)
            }
            ServiceLevel::L1 | ServiceLevel::L2 => unreachable!("short levels have no event"),
        }
    }

    /// Accounts for one memory operation on cache line `line` serviced at
    /// `level`. `dependent` marks an access whose address depends on the
    /// previous access's data.
    pub fn memory_op(
        &mut self,
        level: ServiceLevel,
        dependent: bool,
        line: u64,
        dram: &mut DramTiming,
    ) {
        self.instructions += 1;
        self.now += 2;
        self.drain_completed();

        if dependent {
            self.now = self.now.max(self.last_long_done);
        }

        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => {
                self.now += L2_EXPOSED_CYCLES * self.scale;
            }
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                // MSHR allocate: stall until a miss completes when full.
                // Each pass advances `now` to the earliest outstanding
                // completion, releasing at least one entry.
                while self.in_flight() >= self.mshrs {
                    let next_done = self
                        .pending
                        .iter()
                        .map(|o| o.done_at)
                        .filter(|&d| d > self.now)
                        .min()
                        .expect("in_flight > 0 implies a future completion");
                    self.now = next_done;
                }
                self.drain_completed();
                // ROB full behind the oldest miss: stall for it.
                while let Some(front) = self.pending.front() {
                    if self.instructions - front.at_instr >= self.rob_entries {
                        self.now = self.now.max(front.done_at);
                        self.pending.pop_front();
                    } else {
                        break;
                    }
                }
                let done_at = self.long_done_at(level, line, dram);
                self.pending.push_back(Outstanding { done_at, at_instr: self.instructions });
                self.last_long_done = done_at;
            }
        }
    }

    /// Charges a front-end (instruction fetch) service for the line at
    /// `line`; cheap for L1/L2, a pipeline drain exposing half the
    /// (possibly bank-queued) completion latency beyond that.
    pub fn instr_fetch(&mut self, level: ServiceLevel, line: u64, dram: &mut DramTiming) {
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.now += L2_EXPOSED_CYCLES * self.scale,
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                let done_at = self.long_done_at(level, line, dram);
                self.now += (done_at - self.now) / 2;
            }
        }
    }

    /// Queues one background request (prefetch fill or dirty writeback) on
    /// its DRAM bank. The core does not stall, but the bank stays busy —
    /// later demand misses to the same bank complete later.
    pub fn background(&mut self, traffic: &MemTraffic, dram: &mut DramTiming) {
        let arrival = self.now + self.llc_ticks;
        let _ = dram.request(traffic.line, arrival, traffic.row_hit);
    }

    /// Drains outstanding misses (call once at the end of a run).
    pub fn finish(&mut self) {
        if let Some(max_done) = self.pending.iter().map(|o| o.done_at).max() {
            self.now = self.now.max(max_done);
        }
        self.pending.clear();
    }

    /// Total cycles so far (rounded up).
    pub fn cycles(&self) -> u64 {
        self.now.div_ceil(self.scale)
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Misses currently in flight (MSHR occupancy).
    pub fn outstanding_misses(&self) -> usize {
        self.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_single_core()
    }

    fn sys() -> (EventCore, DramTiming) {
        let c = cfg();
        (EventCore::new(&c), DramTiming::new(&c))
    }

    #[test]
    fn uncontended_miss_matches_analytic_latency() {
        let c = cfg();
        let (mut core, mut dram) = sys();
        core.memory_op(ServiceLevel::Memory, false, 0, &mut dram);
        core.finish();
        // Idle bank: arrival (now + 42) + 200 service = the analytic 242,
        // plus the op's own issue slot.
        assert_eq!(core.cycles(), u64::from(ServiceLevel::Memory.latency(&c)) + 1);
    }

    #[test]
    fn same_bank_misses_queue_up() {
        let (mut same, mut dram_same) = sys();
        // Lines in the same row map to the same bank; issue row *misses*
        // to it back to back (different rows, same bank => same row ÷
        // banks residue requires stride of banks × row_lines).
        for i in 0..8u64 {
            same.memory_op(ServiceLevel::Memory, false, i * 16 * 128, &mut dram_same);
        }
        same.finish();

        let (mut spread, mut dram_spread) = sys();
        // One row per bank: fully parallel.
        for i in 0..8u64 {
            spread.memory_op(ServiceLevel::Memory, false, i * 128, &mut dram_spread);
        }
        spread.finish();

        assert!(
            same.cycles() > spread.cycles() * 3,
            "bank-conflicting misses ({}) must serialize vs spread ({})",
            same.cycles(),
            spread.cycles()
        );
    }

    #[test]
    fn writeback_backpressure_delays_demand() {
        let c = cfg();
        let (mut clean, mut dram_clean) = sys();
        clean.memory_op(ServiceLevel::Memory, false, 0, &mut dram_clean);
        clean.finish();

        let (mut dirty, mut dram_dirty) = sys();
        // A burst of writebacks to the demand line's bank before the read.
        for _ in 0..4 {
            dirty.background(&MemTraffic { line: 0, write: true, row_hit: false }, &mut dram_dirty);
        }
        dirty.memory_op(ServiceLevel::Memory, false, 0, &mut dram_dirty);
        dirty.finish();

        assert!(
            dirty.cycles() > clean.cycles() + 3 * u64::from(c.memory_latency),
            "writeback traffic must back-pressure the demand read: {} vs {}",
            dirty.cycles(),
            clean.cycles()
        );
    }

    #[test]
    fn row_hits_complete_faster() {
        let (mut hits, mut dram_h) = sys();
        let (mut misses, mut dram_m) = sys();
        for _ in 0..100 {
            hits.memory_op(ServiceLevel::MemoryRowHit, true, 0, &mut dram_h);
            misses.memory_op(ServiceLevel::Memory, true, 0, &mut dram_m);
        }
        hits.finish();
        misses.finish();
        assert!(hits.cycles() < misses.cycles());
    }

    #[test]
    fn mshr_occupancy_is_bounded() {
        let mut c = cfg();
        c.mshrs = 4;
        let mut core = EventCore::new(&c);
        let mut dram = DramTiming::new(&c);
        for i in 0..64u64 {
            core.memory_op(ServiceLevel::Memory, false, i * 128, &mut dram);
            assert!(core.outstanding_misses() <= 4, "at op {i}");
        }
        core.finish();
        assert_eq!(core.outstanding_misses(), 0);
    }

    #[test]
    fn event_runs_are_bit_identical() {
        let run = || {
            let (mut core, mut dram) = sys();
            for i in 0..500u64 {
                let level = match i % 3 {
                    0 => ServiceLevel::Memory,
                    1 => ServiceLevel::MemoryRowHit,
                    _ => ServiceLevel::Llc,
                };
                core.memory_op(level, i % 7 == 0, i.wrapping_mul(0x9E37_79B9), &mut dram);
                core.retire((i % 5) as u32);
                if i % 11 == 0 {
                    core.background(
                        &MemTraffic { line: i * 3, write: i % 2 == 0, row_hit: false },
                        &mut dram,
                    );
                }
            }
            core.finish();
            core.cycles()
        };
        assert_eq!(run(), run());
    }
}
