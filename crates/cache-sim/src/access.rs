//! Cache access descriptors seen by replacement policies.

/// The kind of a cache access, as seen at a given cache level.
///
/// These are the four LLC access types the RLR paper enumerates:
/// demand loads, read-for-ownership (store misses from above), hardware
/// prefetches, and writebacks of dirty lines evicted from the level above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// Demand load.
    Load,
    /// Read-for-ownership: a demand store that missed above.
    Rfo,
    /// Hardware prefetch.
    Prefetch,
    /// Writeback of a dirty line evicted from the cache above.
    Writeback,
}

impl AccessKind {
    /// All four kinds, in the paper's canonical order (LD, RFO, PF, WB).
    pub const ALL: [AccessKind; 4] =
        [AccessKind::Load, AccessKind::Rfo, AccessKind::Prefetch, AccessKind::Writeback];

    /// `true` for demand accesses (loads and RFOs), which are the accesses
    /// that count toward demand hits and demand MPKI.
    pub fn is_demand(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Rfo)
    }

    /// Dense index (0..4) in the order of [`AccessKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            AccessKind::Load => 0,
            AccessKind::Rfo => 1,
            AccessKind::Prefetch => 2,
            AccessKind::Writeback => 3,
        }
    }

    /// Short display name used in reports (`LD`, `RFO`, `PF`, `WB`).
    pub fn short_name(self) -> &'static str {
        match self {
            AccessKind::Load => "LD",
            AccessKind::Rfo => "RFO",
            AccessKind::Prefetch => "PF",
            AccessKind::Writeback => "WB",
        }
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One access presented to a cache and its replacement policy.
///
/// `seq` is the cache-local access sequence number (assigned by the cache);
/// at the LLC it identifies the access's position in the LLC stream, which
/// offline oracles (Belady, the RL reward) key on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Program counter of the triggering instruction (0 for writebacks,
    /// whose originating PC is architecturally unavailable).
    pub pc: u64,
    /// Full byte address accessed.
    pub addr: u64,
    /// Access kind at this level.
    pub kind: AccessKind,
    /// Issuing core id.
    pub core: u8,
    /// Cache-local sequence number of this access.
    pub seq: u64,
}

impl Access {
    /// The 64-byte-aligned line address (`addr >> 6`).
    pub fn line(&self) -> u64 {
        self.addr >> 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_kinds() {
        assert!(AccessKind::Load.is_demand());
        assert!(AccessKind::Rfo.is_demand());
        assert!(!AccessKind::Prefetch.is_demand());
        assert!(!AccessKind::Writeback.is_demand());
    }

    #[test]
    fn indices_match_all_order() {
        for (i, kind) in AccessKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn line_strips_offset() {
        let a = Access { pc: 0, addr: 0x1234_5678, kind: AccessKind::Load, core: 0, seq: 0 };
        assert_eq!(a.line(), 0x1234_5678 >> 6);
    }
}
