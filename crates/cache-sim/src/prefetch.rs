//! Hardware prefetchers: next-line (L1), IP-stride (L2), and the
//! confidence-based KPC-P (Kim et al., 2017) evaluated in the paper's §V-B.

/// One prefetch suggestion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrefetchRequest {
    /// Line address (byte address >> 6) to prefetch.
    pub line: u64,
    /// Whether to fill L2 (high confidence) or only the LLC (low
    /// confidence) — KPC-P's pollution-avoidance mechanism; the classic
    /// prefetchers always fill L2.
    pub fill_l2: bool,
}

/// A hardware prefetcher attached to one cache level.
///
/// The prefetcher observes every access to its level and suggests lines to
/// bring in. Suggested prefetches never trigger further prefetches (no
/// recursive issue), matching ChampSim.
pub trait Prefetcher: Send {
    /// Observes an access (`pc`, `line` = byte address >> 6, and whether it
    /// hit at this level) and appends suggestions to `out`.
    fn on_access(&mut self, pc: u64, line: u64, hit: bool, out: &mut Vec<PrefetchRequest>);
}

/// Next-line prefetcher: on every access to line `L`, prefetch `L + 1`.
///
/// Used at L1 (both instruction and data sides) in the paper's
/// configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct NextLinePrefetcher;

impl NextLinePrefetcher {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn on_access(&mut self, _pc: u64, line: u64, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        out.push(PrefetchRequest { line: line + 1, fill_l2: true });
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    pc: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// IP-stride prefetcher: learns a per-PC line stride and, once confident,
/// prefetches `degree` lines ahead.
///
/// Used at L2 in the paper's configuration. The table is direct-mapped and
/// PC-tagged, like ChampSim's `ip_stride` reference prefetcher.
#[derive(Clone, Debug)]
pub struct IpStridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
}

impl IpStridePrefetcher {
    /// Confidence needed before prefetches are issued.
    const CONFIDENCE_THRESHOLD: u8 = 2;

    /// Creates a prefetcher with `entries` table slots (rounded up to a
    /// power of two) issuing `degree` prefetches ahead of a confident
    /// stride.
    pub fn new(entries: usize, degree: u32) -> Self {
        let n = entries.next_power_of_two().max(1);
        Self { table: vec![StrideEntry::default(); n], degree }
    }
}

impl Default for IpStridePrefetcher {
    fn default() -> Self {
        Self::new(256, 2)
    }
}

impl Prefetcher for IpStridePrefetcher {
    fn on_access(&mut self, pc: u64, line: u64, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let mask = self.table.len() as u64 - 1;
        let slot = &mut self.table[(pc & mask) as usize];
        if slot.pc != pc {
            *slot = StrideEntry { pc, last_line: line, stride: 0, confidence: 0 };
            return;
        }
        let stride = line as i64 - slot.last_line as i64;
        slot.last_line = line;
        if stride == 0 {
            return;
        }
        if stride == slot.stride {
            slot.confidence = slot.confidence.saturating_add(1);
        } else {
            slot.stride = stride;
            slot.confidence = 0;
        }
        if slot.confidence >= Self::CONFIDENCE_THRESHOLD {
            for k in 1..=i64::from(self.degree) {
                let target = line as i64 + k * stride;
                if target > 0 {
                    out.push(PrefetchRequest { line: target as u64, fill_l2: true });
                }
            }
        }
    }
}

/// Lines per 4 KB page.
const PAGE_LINES: u64 = 64;
/// Signature width (12 bits → 4096 pattern slots).
const SIG_MASK: u16 = 0xFFF;
/// Confidence ceiling (2-bit counters).
const KPC_CONF_MAX: u8 = 3;
/// Confidence needed to issue at all.
const KPC_ISSUE_THRESHOLD: u8 = 2;

#[derive(Clone, Copy, Debug, Default)]
struct KpcPage {
    valid: bool,
    tag: u64,
    last_offset: u8,
    signature: u16,
}

#[derive(Clone, Copy, Debug, Default)]
struct KpcPattern {
    delta: i8,
    confidence: u8,
}

/// KPC-P: a PC-free, page-local delta-signature prefetcher with
/// confidence-scaled fill levels (Kim et al., "Kill the Program Counter",
/// 2017 — simplified to its §V-B-relevant behaviour).
///
/// Per 4 KB page it tracks a compressed signature of recent line-offset
/// deltas; a pattern table maps signatures to the likeliest next delta
/// with a 2-bit confidence. Lookahead walks the signature chain, issuing
/// prefetches while confident; only maximally-confident prefetches fill
/// L2 — the rest fill the LLC alone, avoiding L2 pollution.
#[derive(Clone, Debug)]
pub struct KpcPrefetcher {
    pages: Vec<KpcPage>,
    patterns: Vec<KpcPattern>,
    degree: u32,
}

impl KpcPrefetcher {
    /// Creates the prefetcher with `pages` tracker slots (rounded up to a
    /// power of two) and `degree` steps of signature lookahead.
    pub fn new(pages: usize, degree: u32) -> Self {
        Self {
            pages: vec![KpcPage::default(); pages.next_power_of_two().max(1)],
            patterns: vec![KpcPattern::default(); usize::from(SIG_MASK) + 1],
            degree,
        }
    }

    fn advance_signature(signature: u16, delta: i8) -> u16 {
        ((signature << 3) ^ (delta as u16 & 0x3F)) & SIG_MASK
    }
}

impl Default for KpcPrefetcher {
    fn default() -> Self {
        Self::new(256, 4)
    }
}

impl Prefetcher for KpcPrefetcher {
    fn on_access(&mut self, _pc: u64, line: u64, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let page = line / PAGE_LINES;
        let offset = (line % PAGE_LINES) as u8;
        let mask = self.pages.len() as u64 - 1;
        let slot = &mut self.pages[(page & mask) as usize];
        if !slot.valid || slot.tag != page {
            *slot = KpcPage { valid: true, tag: page, last_offset: offset, signature: 0 };
            return;
        }
        let delta = offset as i16 - i16::from(slot.last_offset);
        if delta == 0 {
            return;
        }
        let delta = delta as i8;
        let old_signature = slot.signature;
        slot.last_offset = offset;
        slot.signature = Self::advance_signature(old_signature, delta);
        let next_signature = slot.signature;

        // Train the pattern reached by the old signature toward this delta.
        let pattern = &mut self.patterns[usize::from(old_signature)];
        if pattern.delta == delta {
            pattern.confidence = (pattern.confidence + 1).min(KPC_CONF_MAX);
        } else if pattern.confidence == 0 {
            *pattern = KpcPattern { delta, confidence: 1 };
        } else {
            pattern.confidence -= 1;
        }

        // Lookahead along the signature chain.
        let mut signature = next_signature;
        let mut current = i64::from(offset);
        let mut path_confidence = KPC_CONF_MAX;
        for _ in 0..self.degree {
            let pattern = self.patterns[usize::from(signature)];
            if pattern.confidence < KPC_ISSUE_THRESHOLD {
                break;
            }
            current += i64::from(pattern.delta);
            if !(0..PAGE_LINES as i64).contains(&current) {
                break; // KPC-P never crosses the page
            }
            path_confidence = path_confidence.min(pattern.confidence);
            out.push(PrefetchRequest {
                line: page * PAGE_LINES + current as u64,
                fill_l2: path_confidence >= KPC_CONF_MAX,
            });
            signature = Self::advance_signature(signature, pattern.delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(out: &[PrefetchRequest]) -> Vec<u64> {
        out.iter().map(|r| r.line).collect()
    }

    #[test]
    fn next_line_prefetches_successor() {
        let mut p = NextLinePrefetcher::new();
        let mut out = Vec::new();
        p.on_access(0x400, 100, false, &mut out);
        assert_eq!(lines(&out), vec![101]);
        assert!(out[0].fill_l2);
    }

    #[test]
    fn ip_stride_learns_unit_stride() {
        let mut p = IpStridePrefetcher::new(16, 2);
        let mut out = Vec::new();
        for line in [10, 11, 12, 13] {
            out.clear();
            p.on_access(0x400, line, false, &mut out);
        }
        // After 3 consistent deltas, confidence reaches the threshold.
        assert_eq!(lines(&out), vec![14, 15]);
    }

    #[test]
    fn ip_stride_learns_negative_stride() {
        let mut p = IpStridePrefetcher::new(16, 1);
        let mut out = Vec::new();
        for line in [100, 96, 92, 88] {
            out.clear();
            p.on_access(0x8, line, false, &mut out);
        }
        assert_eq!(lines(&out), vec![84]);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = IpStridePrefetcher::new(16, 2);
        let mut out = Vec::new();
        for line in [5, 900, 3, 77, 1234, 9] {
            p.on_access(0x10, line, false, &mut out);
        }
        assert!(out.is_empty(), "no confident stride should emerge: {out:?}");
    }

    #[test]
    fn pc_collision_resets_entry() {
        let mut p = IpStridePrefetcher::new(1, 2);
        let mut out = Vec::new();
        for line in [10, 11, 12] {
            p.on_access(0x1, line, false, &mut out);
        }
        // A different PC maps to the same slot and must take it over.
        p.on_access(0x2, 50, false, &mut out);
        out.clear();
        p.on_access(0x2, 51, false, &mut out);
        assert!(out.is_empty(), "new PC must re-train from scratch");
    }
}

#[cfg(test)]
mod kpc_tests {
    use super::*;

    fn lines(out: &[PrefetchRequest]) -> Vec<u64> {
        out.iter().map(|r| r.line).collect()
    }

    #[test]
    fn learns_unit_stride_within_a_page() {
        // A +1 delta stream drives the signature to a fixed point whose
        // pattern entry saturates within one pass, so late accesses in the
        // walk prefetch ahead with confidence.
        let mut p = KpcPrefetcher::default();
        let mut out = Vec::new();
        for off in 0..16u64 {
            out.clear();
            p.on_access(0, 64 * 10 + off, false, &mut out);
        }
        assert!(
            lines(&out).contains(&(64 * 10 + 16)),
            "confident +1 chain must prefetch ahead: {:?}",
            lines(&out)
        );
        assert!(out.iter().any(|r| r.fill_l2), "a saturated chain fills L2");
    }

    #[test]
    fn never_crosses_the_page_boundary() {
        let mut p = KpcPrefetcher::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            for off in 56..64u64 {
                p.on_access(0, 64 * 3 + off, false, &mut out);
            }
            p.on_access(0, 64 * 3 + 56, false, &mut out);
        }
        out.clear();
        p.on_access(0, 64 * 3 + 62, false, &mut out);
        p.on_access(0, 64 * 3 + 63, false, &mut out);
        for r in &out {
            assert!(r.line < 64 * 4, "prefetch {:#x} crossed the page", r.line);
        }
    }

    #[test]
    fn random_deltas_stay_quiet() {
        let mut p = KpcPrefetcher::default();
        let mut out = Vec::new();
        for off in [3u64, 47, 12, 60, 1, 33, 20] {
            p.on_access(0, 64 * 9 + off, false, &mut out);
        }
        assert!(out.len() <= 1, "no confident pattern should emerge: {:?}", lines(&out));
    }

    #[test]
    fn new_page_resets_tracking() {
        let mut p = KpcPrefetcher::new(4, 2);
        let mut out = Vec::new();
        p.on_access(0, 64, false, &mut out);
        p.on_access(0, 64 + 1, false, &mut out);
        // A colliding page (same slot, 4-entry table) takes over the slot.
        p.on_access(0, 64 * 5 + 30, false, &mut out);
        out.clear();
        p.on_access(0, 64 * 5 + 31, false, &mut out);
        // Fresh signature: at most weakly trained, typically quiet.
        assert!(out.len() <= 1);
    }
}
