//! The three-level hierarchy: private L1I/L1D/L2 per core over a shared LLC.

use crate::access::{Access, AccessKind};
use crate::cache::SetAssocCache;
use crate::capture::{LlcRecord, LlcTrace};
use crate::event::MemTraffic;
use crate::config::{L2PrefetcherKind, SystemConfig};
use crate::prefetch::{IpStridePrefetcher, KpcPrefetcher, NextLinePrefetcher, PrefetchRequest, Prefetcher};
use crate::replacement::{ReplacementPolicy, TrueLru};
use crate::stats::CacheStats;

/// The deepest level that serviced a memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceLevel {
    /// Hit in L1 (I or D).
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the shared LLC.
    Llc,
    /// Serviced by main memory with a DRAM row-buffer hit.
    MemoryRowHit,
    /// Serviced by main memory with a DRAM row-buffer miss.
    Memory,
}

impl ServiceLevel {
    /// Cumulative load-to-use latency in cycles for this service level.
    pub fn latency(self, config: &SystemConfig) -> u32 {
        match self {
            ServiceLevel::L1 => config.l1d.latency,
            ServiceLevel::L2 => config.l1d.latency + config.l2.latency,
            ServiceLevel::Llc => config.l1d.latency + config.l2.latency + config.llc.latency,
            ServiceLevel::MemoryRowHit => {
                config.l1d.latency
                    + config.l2.latency
                    + config.llc.latency
                    + config.memory_row_hit_latency
            }
            ServiceLevel::Memory => {
                config.l1d.latency + config.l2.latency + config.llc.latency + config.memory_latency
            }
        }
    }

    /// Whether this service level engages the long-latency (LLC-and-beyond)
    /// path that the timing model tracks with MSHR/ROB limits.
    pub fn is_long(self) -> bool {
        matches!(
            self,
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory
        )
    }
}

/// The shared last-level cache, with sequence numbering and optional trace
/// capture.
///
/// Every access — from any core, of any kind — receives a monotonically
/// increasing sequence number that offline oracles key on. Because the
/// hierarchy is simulated functionally in program order, this stream is
/// identical regardless of the LLC replacement policy in use.
/// The outcome of one LLC access, as seen by the requesting core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlcOutcome {
    /// The line was in the LLC.
    Hit,
    /// LLC miss serviced by memory with an open DRAM row.
    MissRowHit,
    /// LLC miss serviced by memory with a closed DRAM row.
    MissRowMiss,
}

impl LlcOutcome {
    /// `true` when the access hit in the LLC.
    pub fn is_hit(self) -> bool {
        self == LlcOutcome::Hit
    }
}

pub struct SharedLlc<P: ReplacementPolicy = Box<dyn ReplacementPolicy>> {
    cache: SetAssocCache<P>,
    seq: u64,
    capture: Option<LlcTrace>,
    dram: crate::dram::DramModel,
    memory_reads: u64,
    memory_writes: u64,
    /// Background memory traffic recorded for the event timing model:
    /// prefetch fill reads and dirty writebacks (demand reads are charged
    /// by the timing driver directly via their [`ServiceLevel`]). `None`
    /// (the default) keeps the functional hot path free of the tap.
    traffic: Option<Vec<MemTraffic>>,
}

impl<P: ReplacementPolicy> SharedLlc<P> {
    /// Creates the LLC described by `config` with the given policy.
    pub fn new(config: &SystemConfig, policy: P) -> Self {
        Self {
            cache: SetAssocCache::new("LLC", config.llc, policy),
            seq: 0,
            capture: None,
            dram: crate::dram::DramModel::default(),
            memory_reads: 0,
            memory_writes: 0,
            traffic: None,
        }
    }

    /// Starts capturing the access stream (from the next access onward).
    pub fn enable_capture(&mut self) {
        self.capture = Some(LlcTrace::new());
    }

    /// Stops capturing and returns the captured trace, if any.
    pub fn take_capture(&mut self) -> Option<LlcTrace> {
        self.capture.take()
    }

    /// Returns the records captured so far and *keeps capturing*, letting a
    /// streaming consumer drain the buffer periodically so capture memory
    /// stays bounded however long the run. Returns `None` when capture was
    /// never enabled.
    pub fn drain_capture(&mut self) -> Option<LlcTrace> {
        self.capture.as_mut().map(std::mem::take)
    }

    /// Allows the policy's [`crate::Decision::Bypass`] to be honoured.
    pub fn set_allow_bypass(&mut self, allow: bool) {
        self.cache.set_allow_bypass(allow);
    }

    /// Starts recording background memory traffic (prefetch fill reads and
    /// dirty writebacks) for the event timing model. Purely observational:
    /// functional behaviour is unchanged.
    pub fn enable_traffic_tap(&mut self) {
        self.traffic = Some(Vec::new());
    }

    /// Moves the traffic recorded since the last drain into `out` (appends;
    /// does not clear `out`). A no-op when the tap is disabled.
    pub fn drain_traffic(&mut self, out: &mut Vec<MemTraffic>) {
        if let Some(traffic) = &mut self.traffic {
            out.append(traffic);
        }
    }

    /// Performs one LLC access, going to DRAM on a miss.
    pub fn access(&mut self, pc: u64, addr: u64, kind: AccessKind, core: u8) -> LlcOutcome {
        let access = Access { pc, addr, kind, core, seq: self.seq };
        self.seq += 1;
        if let Some(capture) = &mut self.capture {
            capture.push(LlcRecord { pc, line: addr >> 6, kind, core });
        }
        let out = self.cache.access(&access);
        if let Some(wb) = out.writeback {
            self.memory_writes += 1;
            let row_hit = self.dram.access(wb);
            if let Some(traffic) = &mut self.traffic {
                traffic.push(MemTraffic { line: wb, write: true, row_hit });
            }
        }
        if out.hit {
            return LlcOutcome::Hit;
        }
        if kind == AccessKind::Writeback {
            // Writeback misses allocate without a memory read.
            return LlcOutcome::Hit;
        }
        self.memory_reads += 1;
        let row_hit = self.dram.access(addr >> 6);
        // Demand reads are reported through the returned outcome (the
        // timing driver charges them on the critical path); only prefetch
        // fills are background traffic.
        if kind == AccessKind::Prefetch {
            if let Some(traffic) = &mut self.traffic {
                traffic.push(MemTraffic { line: addr >> 6, write: false, row_hit });
            }
        }
        if row_hit {
            LlcOutcome::MissRowHit
        } else {
            LlcOutcome::MissRowMiss
        }
    }

    /// Replays a chunk of captured LLC records through the cache and DRAM
    /// model, appending one outcome per record. Equivalent to calling
    /// [`access`](SharedLlc::access) once per record in order; trace-replay
    /// drivers use it to process traces in batches rather than one call
    /// per access.
    pub fn access_batch(&mut self, records: &[LlcRecord], outcomes: &mut Vec<LlcOutcome>) {
        outcomes.reserve(records.len());
        for r in records {
            outcomes.push(self.access(r.pc, r.line << 6, r.kind, r.core));
        }
    }

    /// LLC statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Total lines fetched from main memory.
    pub fn memory_reads(&self) -> u64 {
        self.memory_reads
    }

    /// Total dirty lines written to main memory.
    pub fn memory_writes(&self) -> u64 {
        self.memory_writes
    }

    /// The number of accesses seen so far (= next sequence number).
    pub fn accesses_seen(&self) -> u64 {
        self.seq
    }

    /// The underlying cache (for policy inspection).
    pub fn cache(&self) -> &SetAssocCache<P> {
        &self.cache
    }

    /// The DRAM model (row-buffer statistics).
    pub fn dram(&self) -> &crate::dram::DramModel {
        &self.dram
    }

    /// Zeroes statistics after a warm-up phase (contents and sequence
    /// numbering are preserved so captures stay aligned).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        self.dram.reset_stats();
        self.memory_reads = 0;
        self.memory_writes = 0;
        if let Some(traffic) = &mut self.traffic {
            traffic.clear();
        }
    }
}

impl<P: ReplacementPolicy> std::fmt::Debug for SharedLlc<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedLlc")
            .field("cache", &self.cache)
            .field("seq", &self.seq)
            .field("capturing", &self.capture.is_some())
            .finish()
    }
}

/// L2 prefetch fills complete this many L2 accesses after issue, modelling
/// memory latency; a demand access arriving earlier sees a "late prefetch"
/// and is serviced by the LLC (which is filled at issue time).
const L2_PREFETCH_DELAY: u64 = 24;
/// One out of this many L2 prefetch issues is dropped, modelling bandwidth
/// and queue-occupancy losses; dropped lines surface as demand misses.
const L2_PREFETCH_DROP_PERIOD: u64 = 4;
/// Bound on in-flight delayed L2 prefetches.
const L2_PREFETCH_QUEUE: usize = 64;

/// Sentinel for an unoccupied [`PrefetchQueue`] slot. Line addresses are
/// byte addresses shifted right by 6, so a real line can never reach it.
const PREFETCH_SLOT_EMPTY: u64 = u64::MAX;

/// Fixed-capacity FIFO of in-flight delayed L2 prefetches.
///
/// Replaces a `VecDeque<(u64, u64)>`: the line addresses live in one
/// contiguous array whose empty slots hold a sentinel, so the per-issue
/// membership test is a branch-free sweep of the whole array (a reduce-or
/// the compiler turns into vector compares) instead of a short-circuiting
/// scan over strided tuples.
struct PrefetchQueue {
    /// Prefetched line addresses; [`PREFETCH_SLOT_EMPTY`] when unoccupied.
    lines: [u64; L2_PREFETCH_QUEUE],
    /// L2 tick at which each line's fill completes.
    ready: [u64; L2_PREFETCH_QUEUE],
    head: usize,
    len: usize,
}

impl PrefetchQueue {
    fn new() -> Self {
        Self {
            lines: [PREFETCH_SLOT_EMPTY; L2_PREFETCH_QUEUE],
            ready: [0; L2_PREFETCH_QUEUE],
            head: 0,
            len: 0,
        }
    }

    /// Whether `line` is already in flight.
    fn contains(&self, line: u64) -> bool {
        debug_assert_ne!(line, PREFETCH_SLOT_EMPTY);
        self.lines.iter().fold(false, |found, &l| found | (l == line))
    }

    /// The oldest in-flight prefetch, if any.
    fn front(&self) -> Option<(u64, u64)> {
        (self.len > 0).then(|| (self.lines[self.head], self.ready[self.head]))
    }

    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.lines[self.head] = PREFETCH_SLOT_EMPTY;
        self.head = (self.head + 1) % L2_PREFETCH_QUEUE;
        self.len -= 1;
    }

    /// Appends an in-flight prefetch, evicting the oldest when full.
    fn push_back(&mut self, line: u64, ready_at: u64) {
        debug_assert_ne!(line, PREFETCH_SLOT_EMPTY);
        if self.len == L2_PREFETCH_QUEUE {
            self.pop_front();
        }
        let tail = (self.head + self.len) % L2_PREFETCH_QUEUE;
        self.lines[tail] = line;
        self.ready[tail] = ready_at;
        self.len += 1;
    }
}

/// One core's private cache hierarchy (L1I, L1D, unified L2) plus its
/// prefetchers (next-line at both L1s, IP-stride at L2, per Table III).
///
/// Prefetch realism: a purely functional simulator would make every
/// prefetch perfectly timely, which erases exactly the demand traffic the
/// paper studies. Two corrections keep the LLC's view realistic: L1
/// next-line prefetches are miss-triggered, and L2 prefetches fill the LLC
/// at issue but fill L2 only `L2_PREFETCH_DELAY` accesses later (with a
/// fraction dropped), so late or dropped prefetches appear at the LLC as
/// demand accesses — the "prefetched line, reused soon or never" dynamic
/// RLR's type priority exploits.
pub struct CoreHierarchy {
    core: u8,
    // L1/L2 always run true LRU (Table III), so their policy calls are
    // monomorphized — no virtual dispatch anywhere in the private levels.
    l1i: SetAssocCache<TrueLru>,
    l1d: SetAssocCache<TrueLru>,
    l2: SetAssocCache<TrueLru>,
    l1_prefetch: Option<NextLinePrefetcher>,
    l2_prefetch: Option<Box<dyn Prefetcher>>,
    prefetch_buf: Vec<PrefetchRequest>,
    /// L2 access counter used to time delayed prefetch fills.
    l2_ticks: u64,
    /// In-flight L2 prefetches awaiting their delayed fill.
    pending_prefetch: PrefetchQueue,
    /// Total L2 prefetches considered for issue (drives the drop pattern).
    prefetch_issued: u64,
    /// Deferred L2-and-below work, reused across [`data_access_batch`]
    /// calls so batching never allocates in steady state.
    batch_ops: Vec<L2Op>,
}

/// One demand data access in a batched hierarchy replay
/// ([`CoreHierarchy::data_access_batch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataRequest {
    /// Program counter of the load/store.
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// `true` for a store (RFO), `false` for a load.
    pub is_store: bool,
}

/// L2-and-below work deferred by the L1 stage of a batched replay, in the
/// exact order the per-access path would have issued it.
#[derive(Clone, Copy, Debug)]
enum L2Op {
    /// A demand L1D miss; `idx` locates the request's slot in the output.
    Demand { idx: u32, pc: u64, addr: u64, kind: AccessKind },
    /// An L1 next-line prefetch that missed L1D.
    Prefetch { pc: u64, addr: u64 },
    /// A dirty line evicted from L1D.
    Writeback { line: u64 },
}

impl CoreHierarchy {
    /// Builds the private hierarchy for `core`. L1 and L2 use true LRU, as
    /// in the paper (replacement innovation is evaluated at the LLC only).
    pub fn new(core: u8, config: &SystemConfig) -> Self {
        let mut l1d = SetAssocCache::new("L1D", config.l1d, TrueLru::new(&config.l1d));
        l1d.set_rfo_dirties(true);
        Self {
            core,
            l1i: SetAssocCache::new("L1I", config.l1i, TrueLru::new(&config.l1i)),
            l1d,
            l2: SetAssocCache::new("L2", config.l2, TrueLru::new(&config.l2)),
            l1_prefetch: config.prefetchers.then(NextLinePrefetcher::new),
            l2_prefetch: config.prefetchers.then(|| match config.l2_prefetcher {
                L2PrefetcherKind::IpStride => {
                    Box::new(IpStridePrefetcher::default()) as Box<dyn Prefetcher>
                }
                L2PrefetcherKind::KpcP => Box::new(KpcPrefetcher::default()),
            }),
            prefetch_buf: Vec::with_capacity(4),
            l2_ticks: 0,
            pending_prefetch: PrefetchQueue::new(),
            prefetch_issued: 0,
            batch_ops: Vec::new(),
        }
    }

    /// The core id this hierarchy belongs to.
    pub fn core(&self) -> u8 {
        self.core
    }

    /// L1 data cache statistics.
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L1 instruction cache statistics.
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Zeroes private-cache statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    /// Services an L2 access (demand, prefetch, or writeback from L1),
    /// going to the LLC and memory as needed, and running the L2 IP-stride
    /// prefetcher on demand accesses.
    fn access_l2<P: ReplacementPolicy>(
        &mut self,
        pc: u64,
        addr: u64,
        kind: AccessKind,
        llc: &mut SharedLlc<P>,
    ) -> ServiceLevel {
        self.l2_ticks += 1;
        self.drain_ready_prefetches(llc);

        let access = Access { pc, addr, kind, core: self.core, seq: 0 };
        let out = self.l2.access(&access);
        let mut level = ServiceLevel::L2;
        if !out.hit && kind != AccessKind::Writeback {
            level = match llc.access(pc, addr, kind, self.core) {
                LlcOutcome::Hit => ServiceLevel::Llc,
                LlcOutcome::MissRowHit => ServiceLevel::MemoryRowHit,
                LlcOutcome::MissRowMiss => ServiceLevel::Memory,
            };
        }
        if let Some(wb) = out.writeback {
            llc.access(0, wb << 6, AccessKind::Writeback, self.core);
        }

        if kind.is_demand() {
            if let Some(prefetcher) = &mut self.l2_prefetch {
                let mut targets = std::mem::take(&mut self.prefetch_buf);
                targets.clear();
                prefetcher.on_access(pc, addr >> 6, out.hit, &mut targets);
                for &request in &targets {
                    self.prefetch_issued += 1;
                    if self.prefetch_issued.is_multiple_of(L2_PREFETCH_DROP_PERIOD) {
                        continue; // dropped: bandwidth/queue loss
                    }
                    let target = request.line;
                    let pf_addr = target << 6;
                    if self.l2.contains(pf_addr) || self.pending_prefetch.contains(target) {
                        continue;
                    }
                    // The LLC is filled at issue; L2 receives the line after
                    // the delay (late prefetches are caught by the LLC) —
                    // unless the prefetcher marked it low-confidence, in
                    // which case only the LLC is filled (KPC-P semantics).
                    llc.access(pc, pf_addr, AccessKind::Prefetch, self.core);
                    if !request.fill_l2 {
                        continue;
                    }
                    self.pending_prefetch.push_back(target, self.l2_ticks + L2_PREFETCH_DELAY);
                }
                self.prefetch_buf = targets;
            }
        }
        level
    }

    /// Completes delayed L2 prefetch fills whose latency has elapsed.
    fn drain_ready_prefetches<P: ReplacementPolicy>(&mut self, llc: &mut SharedLlc<P>) {
        while let Some((line, ready_at)) = self.pending_prefetch.front() {
            if ready_at > self.l2_ticks {
                break;
            }
            self.pending_prefetch.pop_front();
            let pf_addr = line << 6;
            if self.l2.contains(pf_addr) {
                continue; // a demand access already brought it in
            }
            let pf = Access { pc: 0, addr: pf_addr, kind: AccessKind::Prefetch, core: self.core, seq: 0 };
            let pf_out = self.l2.access(&pf);
            if let Some(wb) = pf_out.writeback {
                llc.access(0, wb << 6, AccessKind::Writeback, self.core);
            }
        }
    }

    /// Performs one demand data access (load or store) and returns the
    /// deepest level that serviced it.
    pub fn data_access<P: ReplacementPolicy>(
        &mut self,
        pc: u64,
        addr: u64,
        is_store: bool,
        llc: &mut SharedLlc<P>,
    ) -> ServiceLevel {
        let kind = if is_store { AccessKind::Rfo } else { AccessKind::Load };
        let access = Access { pc, addr, kind, core: self.core, seq: 0 };
        let out = self.l1d.access(&access);
        let level = if out.hit {
            ServiceLevel::L1
        } else {
            self.access_l2(pc, addr, kind, llc)
        };
        if let Some(wb) = out.writeback {
            let wb_access =
                Access { pc: 0, addr: wb << 6, kind: AccessKind::Writeback, core: self.core, seq: 0 };
            let wb_out = self.l2.access(&wb_access);
            if let Some(wb2) = wb_out.writeback {
                llc.access(0, wb2 << 6, AccessKind::Writeback, self.core);
            }
        }

        if self.l1_prefetch.is_some() && !out.hit {
            let pf_addr = addr + crate::LINE_BYTES;
            if !self.l1d.contains(pf_addr) {
                let pf =
                    Access { pc, addr: pf_addr, kind: AccessKind::Prefetch, core: self.core, seq: 0 };
                let pf_out = self.l1d.access(&pf);
                self.access_l2(pc, pf_addr, AccessKind::Prefetch, llc);
                if let Some(wb) = pf_out.writeback {
                    let wb_access = Access {
                        pc: 0,
                        addr: wb << 6,
                        kind: AccessKind::Writeback,
                        core: self.core,
                        seq: 0,
                    };
                    let wb_out = self.l2.access(&wb_access);
                    if let Some(wb2) = wb_out.writeback {
                        llc.access(0, wb2 << 6, AccessKind::Writeback, self.core);
                    }
                }
            }
        }
        level
    }

    /// Replays a chunk of demand data accesses, appending one
    /// [`ServiceLevel`] per request. Equivalent to calling
    /// [`data_access`](CoreHierarchy::data_access) once per request in
    /// order, but staged by level: the L1D runs to completion over the
    /// whole chunk first, then the deferred L2/LLC work drains.
    ///
    /// The staging is exact, not approximate: the hierarchy is simulated
    /// functionally, so L1D behaviour never depends on L2/LLC outcomes —
    /// reordering L2 work *after* the chunk's L1 work changes no L1
    /// decision, and the deferred ops replay in the same relative order
    /// the per-access path interleaves them (demand miss, then L1
    /// writeback, then L1 next-line prefetch and its writeback), so the
    /// L2 and LLC see byte-identical request streams. The batch
    /// equivalence suite in `experiments` locks this down against the
    /// per-access path on the golden 429.mcf fixture.
    pub fn data_access_batch<P: ReplacementPolicy>(
        &mut self,
        requests: &[DataRequest],
        llc: &mut SharedLlc<P>,
        levels: &mut Vec<ServiceLevel>,
    ) {
        let start = levels.len();
        levels.resize(start + requests.len(), ServiceLevel::L1);
        let mut ops = std::mem::take(&mut self.batch_ops);
        ops.clear();

        // Stage 1: the private L1D, deferring everything below it.
        for (idx, request) in requests.iter().enumerate() {
            let kind = if request.is_store { AccessKind::Rfo } else { AccessKind::Load };
            let access =
                Access { pc: request.pc, addr: request.addr, kind, core: self.core, seq: 0 };
            let out = self.l1d.access(&access);
            if !out.hit {
                ops.push(L2Op::Demand { idx: idx as u32, pc: request.pc, addr: request.addr, kind });
            }
            if let Some(wb) = out.writeback {
                ops.push(L2Op::Writeback { line: wb });
            }
            if self.l1_prefetch.is_some() && !out.hit {
                let pf_addr = request.addr + crate::LINE_BYTES;
                if !self.l1d.contains(pf_addr) {
                    let pf = Access {
                        pc: request.pc,
                        addr: pf_addr,
                        kind: AccessKind::Prefetch,
                        core: self.core,
                        seq: 0,
                    };
                    let pf_out = self.l1d.access(&pf);
                    ops.push(L2Op::Prefetch { pc: request.pc, addr: pf_addr });
                    if let Some(wb) = pf_out.writeback {
                        ops.push(L2Op::Writeback { line: wb });
                    }
                }
            }
        }

        // Stage 2: L2 and below, in the per-access path's issue order.
        for &op in &ops {
            match op {
                L2Op::Demand { idx, pc, addr, kind } => {
                    levels[start + idx as usize] = self.access_l2(pc, addr, kind, llc);
                }
                L2Op::Prefetch { pc, addr } => {
                    self.access_l2(pc, addr, AccessKind::Prefetch, llc);
                }
                L2Op::Writeback { line } => {
                    let wb_access = Access {
                        pc: 0,
                        addr: line << 6,
                        kind: AccessKind::Writeback,
                        core: self.core,
                        seq: 0,
                    };
                    let wb_out = self.l2.access(&wb_access);
                    if let Some(wb2) = wb_out.writeback {
                        llc.access(0, wb2 << 6, AccessKind::Writeback, self.core);
                    }
                }
            }
        }
        self.batch_ops = ops;
    }

    /// Performs one instruction fetch for the line containing `pc`.
    pub fn instr_fetch<P: ReplacementPolicy>(&mut self, pc: u64, llc: &mut SharedLlc<P>) -> ServiceLevel {
        let access = Access { pc, addr: pc, kind: AccessKind::Load, core: self.core, seq: 0 };
        let out = self.l1i.access(&access);
        let level = if out.hit {
            ServiceLevel::L1
        } else {
            self.access_l2(pc, pc, AccessKind::Load, llc)
        };
        // Instruction lines are clean; evictions never write back.
        if self.l1_prefetch.is_some() && !out.hit {
            let pf_addr = pc + crate::LINE_BYTES;
            if !self.l1i.contains(pf_addr) {
                let pf =
                    Access { pc, addr: pf_addr, kind: AccessKind::Prefetch, core: self.core, seq: 0 };
                self.l1i.access(&pf);
                self.access_l2(pc, pf_addr, AccessKind::Prefetch, llc);
            }
        }
        level
    }
}

impl std::fmt::Debug for CoreHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreHierarchy")
            .field("core", &self.core)
            .field("l1i", &self.l1i)
            .field("l1d", &self.l1d)
            .field("l2", &self.l2)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> (CoreHierarchy, SharedLlc<TrueLru>) {
        let cfg = SystemConfig::paper_single_core();
        let llc = SharedLlc::new(&cfg, TrueLru::new(&cfg.llc));
        (CoreHierarchy::new(0, &cfg), llc)
    }

    #[test]
    fn repeated_access_hits_in_l1() {
        let (mut h, mut llc) = system();
        assert_eq!(h.data_access(0x400, 0x10000, false, &mut llc), ServiceLevel::Memory);
        assert_eq!(h.data_access(0x400, 0x10000, false, &mut llc), ServiceLevel::L1);
    }

    #[test]
    fn llc_sees_l2_misses_only() {
        let (mut h, mut llc) = system();
        h.data_access(0x400, 0x2000_0000, false, &mut llc);
        let before = llc.stats().accesses();
        // This hits in L1, so no LLC traffic at all.
        h.data_access(0x400, 0x2000_0000, false, &mut llc);
        assert_eq!(llc.stats().accesses(), before);
    }

    #[test]
    fn next_line_prefetch_reaches_llc() {
        let cfg = SystemConfig::paper_single_core();
        let mut llc = SharedLlc::new(&cfg, TrueLru::new(&cfg.llc));
        let mut h = CoreHierarchy::new(0, &cfg);
        h.data_access(0x400, 0x3000_0000, false, &mut llc);
        let pf = llc.stats().by_kind[AccessKind::Prefetch.index()].accesses;
        assert!(pf >= 1, "L1 next-line prefetch must propagate to the LLC on a cold region");
    }

    #[test]
    fn prefetchers_can_be_disabled() {
        let cfg = SystemConfig::paper_single_core().without_prefetchers();
        let mut llc = SharedLlc::new(&cfg, TrueLru::new(&cfg.llc));
        let mut h = CoreHierarchy::new(0, &cfg);
        h.data_access(0x400, 0x3000_0000, false, &mut llc);
        assert_eq!(llc.stats().by_kind[AccessKind::Prefetch.index()].accesses, 0);
    }

    #[test]
    fn dirty_lines_write_back_through_the_hierarchy() {
        let cfg = SystemConfig::paper_single_core();
        let mut llc = SharedLlc::new(&cfg, TrueLru::new(&cfg.llc));
        let mut h = CoreHierarchy::new(0, &cfg);
        // Store to one line, then stream enough conflicting lines through the
        // same L1/L2 sets to force the dirty line all the way out.
        h.data_access(0x400, 0, true, &mut llc);
        for i in 1..=4096u64 {
            // Stride by L1-set-aliasing distance to evict quickly.
            h.data_access(0x400, i * 64 * 64, false, &mut llc);
        }
        let wb = llc.stats().by_kind[AccessKind::Writeback.index()].accesses;
        assert!(wb >= 1, "dirty L1 line must eventually be written back to the LLC");
    }

    #[test]
    fn capture_records_the_llc_stream() {
        let (mut h, mut llc) = system();
        llc.enable_capture();
        h.data_access(0x400, 0x4000_0000, false, &mut llc);
        let trace = llc.take_capture().expect("capture was enabled");
        assert!(!trace.is_empty());
        assert_eq!(trace.records()[0].line, 0x4000_0000 >> 6);
    }

    #[test]
    fn drain_capture_keeps_capturing() {
        let (mut h, mut llc) = system();
        assert!(llc.drain_capture().is_none(), "capture not enabled yet");
        llc.enable_capture();
        h.data_access(0x400, 0x4000_0000, false, &mut llc);
        let first = llc.drain_capture().expect("capture enabled");
        assert!(!first.is_empty());
        // Still capturing after the drain: a new line reaches the buffer.
        h.data_access(0x404, 0x5000_0000, false, &mut llc);
        let second = llc.take_capture().expect("capture still enabled");
        assert!(second.records().iter().any(|r| r.line == 0x5000_0000 >> 6));
        assert!(!second.records().iter().any(|r| r.line == 0x4000_0000 >> 6));
    }

    #[test]
    fn instruction_fetches_hit_after_first_touch() {
        let (mut h, mut llc) = system();
        h.instr_fetch(0x40_0000, &mut llc);
        assert_eq!(h.instr_fetch(0x40_0000, &mut llc), ServiceLevel::L1);
    }

    #[test]
    fn service_level_latencies_are_cumulative() {
        let cfg = SystemConfig::paper_single_core();
        assert_eq!(ServiceLevel::L1.latency(&cfg), 4);
        assert_eq!(ServiceLevel::L2.latency(&cfg), 16);
        assert_eq!(ServiceLevel::Llc.latency(&cfg), 42);
        assert_eq!(ServiceLevel::Memory.latency(&cfg), 242);
    }
}
