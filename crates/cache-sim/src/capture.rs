//! LLC access trace capture: the `<PC, access type, address>` records the
//! paper's offline pipeline (RL agent, Belady oracle) consumes.

use std::io::{self, Read, Write};

use crate::access::AccessKind;

/// Why a serialized trace could not be decoded.
#[derive(Debug)]
pub enum TraceFormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with `LLCT`.
    BadMagic([u8; 4]),
    /// A record carries an access-kind byte outside `0..=3`.
    BadKind {
        /// Zero-based index of the offending record.
        index: u64,
        /// The invalid kind byte.
        kind: u8,
    },
    /// The stream ended before the promised record count.
    Truncated {
        /// Records the header promised.
        expected: u64,
        /// Records actually present.
        got: u64,
    },
}

impl std::fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::BadMagic(m) => write!(f, "bad trace magic {m:02x?}"),
            Self::BadKind { index, kind } => {
                write!(f, "record {index} has invalid access kind {kind}")
            }
            Self::Truncated { expected, got } => {
                write!(f, "truncated trace: header promised {expected} records, found {got}")
            }
        }
    }
}

impl std::error::Error for TraceFormatError {}

impl From<io::Error> for TraceFormatError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One captured LLC access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LlcRecord {
    /// Program counter of the triggering instruction (0 for writebacks).
    pub pc: u64,
    /// Line address (byte address >> 6).
    pub line: u64,
    /// Access kind at the LLC.
    pub kind: AccessKind,
    /// Issuing core.
    pub core: u8,
}

/// An ordered LLC access trace.
///
/// The record index *is* the LLC sequence number, so offline oracles keyed
/// by sequence number line up exactly with a re-run of the same workload.
///
/// ```
/// use cache_sim::{AccessKind, LlcRecord, LlcTrace};
///
/// let mut t = LlcTrace::new();
/// t.push(LlcRecord { pc: 1, line: 7, kind: AccessKind::Load, core: 0 });
/// t.push(LlcRecord { pc: 2, line: 9, kind: AccessKind::Load, core: 0 });
/// t.push(LlcRecord { pc: 1, line: 7, kind: AccessKind::Load, core: 0 });
/// let next = t.next_use_table();
/// assert_eq!(next[0], 2);          // line 7 is used again at index 2
/// assert_eq!(next[1], u64::MAX);   // line 9 is never used again
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LlcTrace {
    records: Vec<LlcRecord>,
}

impl LlcTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: LlcRecord) {
        self.records.push(record);
    }

    /// The captured records in access order.
    pub fn records(&self) -> &[LlcRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Shortens the trace to at most `len` records.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// The records issued by `core`, in their original global order — the
    /// per-core slice of a shared-LLC capture.
    pub fn filter_core(&self, core: u8) -> LlcTrace {
        Self { records: self.records.iter().copied().filter(|r| r.core == core).collect() }
    }

    /// Distinct issuing cores present in the trace, ascending.
    pub fn cores(&self) -> Vec<u8> {
        let mut seen = [false; 256];
        for r in &self.records {
            seen[usize::from(r.core)] = true;
        }
        (0u16..256).filter(|&c| seen[c as usize]).map(|c| c as u8).collect()
    }

    /// For each access index `i`, the index of the *next* access to the same
    /// line, or `u64::MAX` if the line is never referenced again. This is the
    /// oracle used by Belady's algorithm and by the RL reward.
    pub fn next_use_table(&self) -> Vec<u64> {
        let mut next = vec![u64::MAX; self.records.len()];
        let mut last_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for i in (0..self.records.len()).rev() {
            let line = self.records[i].line;
            if let Some(&j) = last_seen.get(&line) {
                next[i] = j;
            }
            last_seen.insert(line, i as u64);
        }
        next
    }

    /// Serializes the trace to a compact binary format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"LLCT")?;
        w.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            w.write_all(&r.pc.to_le_bytes())?;
            w.write_all(&r.line.to_le_bytes())?;
            w.write_all(&[r.kind.index() as u8, r.core])?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`LlcTrace::write_to`], validating
    /// every on-wire field. The header's record count is *not* trusted for
    /// allocation — memory grows with bytes actually read, so a corrupt
    /// length field cannot demand gigabytes up front.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFormatError::BadMagic`] for foreign data,
    /// [`TraceFormatError::Truncated`] when the stream ends early,
    /// [`TraceFormatError::BadKind`] for an out-of-range kind byte, or a
    /// wrapped I/O error.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceFormatError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"LLCT" {
            return Err(TraceFormatError::BadMagic(magic));
        }
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let len = u64::from_le_bytes(len8);
        // Pre-reserve only a bounded amount; Vec growth handles the rest.
        let mut records = Vec::with_capacity(len.min(1 << 16) as usize);
        for index in 0..len {
            let mut buf = [0u8; 18];
            r.read_exact(&mut buf).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    TraceFormatError::Truncated { expected: len, got: index }
                } else {
                    TraceFormatError::Io(e)
                }
            })?;
            let pc = u64::from_le_bytes(buf[0..8].try_into().expect("slice is 8 bytes"));
            let line = u64::from_le_bytes(buf[8..16].try_into().expect("slice is 8 bytes"));
            let kind = match buf[16] {
                0 => AccessKind::Load,
                1 => AccessKind::Rfo,
                2 => AccessKind::Prefetch,
                3 => AccessKind::Writeback,
                k => return Err(TraceFormatError::BadKind { index, kind: k }),
            };
            records.push(LlcRecord { pc, line, kind, core: buf[17] });
        }
        Ok(Self { records })
    }
}

impl FromIterator<LlcRecord> for LlcTrace {
    fn from_iter<T: IntoIterator<Item = LlcRecord>>(iter: T) -> Self {
        Self { records: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: u64) -> LlcRecord {
        LlcRecord { pc: 0x400, line, kind: AccessKind::Load, core: 0 }
    }

    #[test]
    fn next_use_handles_repeats_and_tail() {
        let t: LlcTrace = [rec(1), rec(2), rec(1), rec(1), rec(2)].into_iter().collect();
        assert_eq!(t.next_use_table(), vec![2, 4, 3, u64::MAX, u64::MAX]);
    }

    #[test]
    fn filter_core_keeps_order_and_partitions_the_trace() {
        let t: LlcTrace = (0..10u64)
            .map(|i| LlcRecord { pc: i, line: i * 3, kind: AccessKind::Load, core: (i % 3) as u8 })
            .collect();
        assert_eq!(t.cores(), vec![0, 1, 2]);
        let total: usize = t.cores().iter().map(|&c| t.filter_core(c).len()).sum();
        assert_eq!(total, t.len());
        let c1 = t.filter_core(1);
        assert!(c1.records().iter().all(|r| r.core == 1));
        assert!(c1.records().windows(2).all(|w| w[0].pc < w[1].pc), "order preserved");
        assert!(t.filter_core(9).is_empty());
    }

    #[test]
    fn roundtrip_serialization() {
        let t: LlcTrace = [
            LlcRecord { pc: 7, line: 42, kind: AccessKind::Prefetch, core: 3 },
            LlcRecord { pc: 0, line: 9, kind: AccessKind::Writeback, core: 1 },
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write cannot fail");
        let back = LlcTrace::read_from(buf.as_slice()).expect("roundtrip");
        assert_eq!(t, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            LlcTrace::read_from(&b"NOPE\0\0\0\0\0\0\0\0"[..]),
            Err(TraceFormatError::BadMagic(m)) if &m == b"NOPE"
        ));
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let t: LlcTrace = (0..5).map(rec).collect();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write cannot fail");
        buf.truncate(buf.len() - 7); // tear the last record
        assert!(matches!(
            LlcTrace::read_from(buf.as_slice()),
            Err(TraceFormatError::Truncated { expected: 5, got: 4 })
        ));
    }

    #[test]
    fn bogus_length_field_does_not_allocate_unboundedly() {
        // Header promising u64::MAX records with an empty body must fail
        // fast with a truncation error, not reserve memory for the claim.
        let mut buf = b"LLCT".to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            LlcTrace::read_from(buf.as_slice()),
            Err(TraceFormatError::Truncated { expected: u64::MAX, got: 0 })
        ));
    }

    #[test]
    fn invalid_kind_byte_is_rejected_with_its_index() {
        let t: LlcTrace = [rec(1), rec(2)].into_iter().collect();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write cannot fail");
        let kind_byte = buf.len() - 2; // second record's kind
        buf[kind_byte] = 9;
        assert!(matches!(
            LlcTrace::read_from(buf.as_slice()),
            Err(TraceFormatError::BadKind { index: 1, kind: 9 })
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = LlcTrace::new();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write cannot fail");
        assert!(LlcTrace::read_from(buf.as_slice()).expect("roundtrip").is_empty());
    }
}
