//! LLC access trace capture: the `<PC, access type, address>` records the
//! paper's offline pipeline (RL agent, Belady oracle) consumes.

use std::io::{self, Read, Write};

use crate::access::AccessKind;

/// One captured LLC access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LlcRecord {
    /// Program counter of the triggering instruction (0 for writebacks).
    pub pc: u64,
    /// Line address (byte address >> 6).
    pub line: u64,
    /// Access kind at the LLC.
    pub kind: AccessKind,
    /// Issuing core.
    pub core: u8,
}

/// An ordered LLC access trace.
///
/// The record index *is* the LLC sequence number, so offline oracles keyed
/// by sequence number line up exactly with a re-run of the same workload.
///
/// ```
/// use cache_sim::{AccessKind, LlcRecord, LlcTrace};
///
/// let mut t = LlcTrace::new();
/// t.push(LlcRecord { pc: 1, line: 7, kind: AccessKind::Load, core: 0 });
/// t.push(LlcRecord { pc: 2, line: 9, kind: AccessKind::Load, core: 0 });
/// t.push(LlcRecord { pc: 1, line: 7, kind: AccessKind::Load, core: 0 });
/// let next = t.next_use_table();
/// assert_eq!(next[0], 2);          // line 7 is used again at index 2
/// assert_eq!(next[1], u64::MAX);   // line 9 is never used again
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LlcTrace {
    records: Vec<LlcRecord>,
}

impl LlcTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: LlcRecord) {
        self.records.push(record);
    }

    /// The captured records in access order.
    pub fn records(&self) -> &[LlcRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Shortens the trace to at most `len` records.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// For each access index `i`, the index of the *next* access to the same
    /// line, or `u64::MAX` if the line is never referenced again. This is the
    /// oracle used by Belady's algorithm and by the RL reward.
    pub fn next_use_table(&self) -> Vec<u64> {
        let mut next = vec![u64::MAX; self.records.len()];
        let mut last_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for i in (0..self.records.len()).rev() {
            let line = self.records[i].line;
            if let Some(&j) = last_seen.get(&line) {
                next[i] = j;
            }
            last_seen.insert(line, i as u64);
        }
        next
    }

    /// Serializes the trace to a compact binary format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"LLCT")?;
        w.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            w.write_all(&r.pc.to_le_bytes())?;
            w.write_all(&r.line.to_le_bytes())?;
            w.write_all(&[r.kind.index() as u8, r.core])?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`LlcTrace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"LLCT" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
        }
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let len = u64::from_le_bytes(len8) as usize;
        let mut records = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let mut buf = [0u8; 18];
            r.read_exact(&mut buf)?;
            let pc = u64::from_le_bytes(buf[0..8].try_into().expect("slice is 8 bytes"));
            let line = u64::from_le_bytes(buf[8..16].try_into().expect("slice is 8 bytes"));
            let kind = match buf[16] {
                0 => AccessKind::Load,
                1 => AccessKind::Rfo,
                2 => AccessKind::Prefetch,
                3 => AccessKind::Writeback,
                k => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad access kind {k}"),
                    ))
                }
            };
            records.push(LlcRecord { pc, line, kind, core: buf[17] });
        }
        Ok(Self { records })
    }
}

impl FromIterator<LlcRecord> for LlcTrace {
    fn from_iter<T: IntoIterator<Item = LlcRecord>>(iter: T) -> Self {
        Self { records: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: u64) -> LlcRecord {
        LlcRecord { pc: 0x400, line, kind: AccessKind::Load, core: 0 }
    }

    #[test]
    fn next_use_handles_repeats_and_tail() {
        let t: LlcTrace = [rec(1), rec(2), rec(1), rec(1), rec(2)].into_iter().collect();
        assert_eq!(t.next_use_table(), vec![2, 4, 3, u64::MAX, u64::MAX]);
    }

    #[test]
    fn roundtrip_serialization() {
        let t: LlcTrace = [
            LlcRecord { pc: 7, line: 42, kind: AccessKind::Prefetch, core: 3 },
            LlcRecord { pc: 0, line: 9, kind: AccessKind::Writeback, core: 1 },
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write cannot fail");
        let back = LlcTrace::read_from(buf.as_slice()).expect("roundtrip");
        assert_eq!(t, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(LlcTrace::read_from(&b"NOPE\0\0\0\0\0\0\0\0"[..]).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = LlcTrace::new();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write cannot fail");
        assert!(LlcTrace::read_from(buf.as_slice()).expect("roundtrip").is_empty());
    }
}
