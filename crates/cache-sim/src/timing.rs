//! Core timing models: the analytic formula, the mode selector, and the
//! facade that lets the drivers swap in the discrete-event core.
//!
//! The analytic model ([`CoreTiming`]) converts a stream of retired
//! instructions and memory-service levels into cycles. It captures the
//! three effects that matter for LLC replacement studies:
//!
//! 1. **Issue width** — non-memory instructions retire at `issue_width` per
//!    cycle.
//! 2. **Memory-level parallelism** — long-latency accesses (LLC and beyond)
//!    overlap, bounded by the MSHR count and by the reorder buffer: a miss
//!    blocks retirement once `rob_entries` younger instructions have been
//!    issued behind it.
//! 3. **Dependent chains** — an access flagged as address-dependent on the
//!    previous one (pointer chasing) cannot issue until that access's data
//!    returns, serializing misses regardless of MSHR capacity.
//!
//! L1 hits are considered fully pipelined; L2 hits expose a small fixed
//! penalty. This is deliberately simpler than a cycle-accurate core: the
//! paper's results are *relative* IPC across LLC policies, which this model
//! preserves because cycles are driven by the same LLC hit/miss outcomes a
//! detailed core would see.
//!
//! The discrete-event model ([`crate::EventCore`]) adds DRAM bank queueing
//! and writeback backpressure on top of the same accounting; select it with
//! [`TimingMode::Event`] (see [`crate::SystemConfig::timing`]). Both models
//! share one fixed-point time base ([`ticks_per_cycle`]): time advances in
//! integer *sub-slots* of `1 / (2 × issue_width)` cycles, so every charge —
//! per-instruction issue slots, full latencies, and the fetch path's
//! half-latency — is exact u64 arithmetic and cycle counts are
//! bit-reproducible across platforms (the earlier f64 accumulator could
//! round differently at retire boundaries).

use std::collections::VecDeque;

use crate::config::SystemConfig;
use crate::dram::DramTiming;
use crate::event::{EventCore, MemTraffic};
use crate::hierarchy::ServiceLevel;

/// Cycles of exposed latency charged for an L2 hit (the OOO window hides
/// the rest).
pub(crate) const L2_EXPOSED_CYCLES: u64 = 1;

/// Sub-slots per cycle for the fixed-point time base shared by both timing
/// models: `2 × issue_width`. One instruction is exactly 2 sub-slots
/// (`1/width` cycles), a full latency of `L` cycles is `L × scale`
/// sub-slots, and the instruction-fetch path's half-latency charge
/// (`L × width` sub-slots) stays integral for any width.
pub(crate) fn ticks_per_cycle(config: &SystemConfig) -> u64 {
    2 * u64::from(config.issue_width.max(1))
}

/// Which core timing model converts hit/miss outcomes into cycles.
///
/// The functional (hit/miss) path is identical under both modes — timing is
/// a pure consumer of service levels — so counters, captures, and oracle
/// results never depend on this selector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TimingMode {
    /// The analytic MLP-aware formula ([`CoreTiming`]): latencies are
    /// charged per-op with MSHR/ROB/dependence limits, but memory service
    /// time is a constant per row-buffer class.
    #[default]
    Analytic,
    /// The discrete-event core ([`crate::EventCore`]): miss completion
    /// times come from per-bank DRAM busy-until queues, and prefetch /
    /// writeback traffic occupies the same banks (backpressure).
    Event,
}

impl TimingMode {
    /// Stable lower-case name (CLI flag value, checkpoint key component).
    pub fn name(self) -> &'static str {
        match self {
            TimingMode::Analytic => "analytic",
            TimingMode::Event => "event",
        }
    }

    /// Parses a mode name as accepted by the CLI and `RLR_TIMING`.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "analytic" => Some(TimingMode::Analytic),
            "event" => Some(TimingMode::Event),
            _ => None,
        }
    }

    /// Resolves the mode from the `RLR_TIMING` environment variable
    /// (unset or empty means [`TimingMode::Analytic`]).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: a typo silently falling back to
    /// the analytic model would mislabel every figure produced by the run.
    pub fn from_env() -> Self {
        match std::env::var("RLR_TIMING") {
            Err(_) => TimingMode::Analytic,
            Ok(raw) if raw.trim().is_empty() => TimingMode::Analytic,
            Ok(raw) => Self::parse(&raw)
                .unwrap_or_else(|| panic!("RLR_TIMING must be `analytic` or `event`, got `{raw}`")),
        }
    }
}

impl std::fmt::Display for TimingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One in-flight long-latency miss, in program order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Outstanding {
    /// Completion time in sub-slots.
    pub(crate) done_at: u64,
    /// Instruction count when the miss issued (ROB occupancy anchor).
    pub(crate) at_instr: u64,
}

/// Per-core cycle accounting (the analytic model).
///
/// ```
/// use cache_sim::{CoreTiming, SystemConfig};
/// use cache_sim::ServiceLevel;
///
/// let cfg = SystemConfig::paper_single_core();
/// let mut t = CoreTiming::new(&cfg);
/// t.retire(300);
/// t.memory_op(ServiceLevel::L1, false, &cfg);
/// assert_eq!(t.instructions(), 301);
/// t.finish();
/// assert!(t.cycles() >= 100); // 300 instructions at width 3
/// ```
#[derive(Clone, Debug)]
pub struct CoreTiming {
    /// Sub-slots per cycle (see [`ticks_per_cycle`]).
    scale: u64,
    rob_entries: u64,
    mshrs: usize,
    /// Elapsed time in sub-slots.
    now: u64,
    instructions: u64,
    pending: VecDeque<Outstanding>,
    last_long_done: u64,
}

impl CoreTiming {
    /// Creates a timing model from the system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            scale: ticks_per_cycle(config),
            rob_entries: u64::from(config.rob_entries),
            mshrs: config.mshrs as usize,
            now: 0,
            instructions: 0,
            pending: VecDeque::with_capacity(config.mshrs as usize),
            last_long_done: 0,
        }
    }

    /// Retires `n` non-memory instructions.
    pub fn retire(&mut self, n: u32) {
        self.instructions += u64::from(n);
        self.now += 2 * u64::from(n);
    }

    /// Accounts for one memory operation serviced at `level`.
    ///
    /// `dependent` marks an access whose address depends on the previous
    /// access's data.
    pub fn memory_op(&mut self, level: ServiceLevel, dependent: bool, config: &SystemConfig) {
        self.instructions += 1;
        self.now += 2;

        // Retire any misses that completed in the meantime.
        while let Some(front) = self.pending.front() {
            if front.done_at <= self.now {
                self.pending.pop_front();
            } else {
                break;
            }
        }

        if dependent {
            // Cannot even compute the address before the previous access's
            // data arrives.
            self.now = self.now.max(self.last_long_done);
        }

        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => {
                self.now += L2_EXPOSED_CYCLES * self.scale;
            }
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                // MSHR full: stall until the oldest miss returns.
                while self.pending.len() >= self.mshrs {
                    let front = self.pending.pop_front().expect("len >= mshrs > 0");
                    self.now = self.now.max(front.done_at);
                }
                // ROB full behind the oldest miss: stall for it.
                while let Some(front) = self.pending.front() {
                    if self.instructions - front.at_instr >= self.rob_entries {
                        self.now = self.now.max(front.done_at);
                        self.pending.pop_front();
                    } else {
                        break;
                    }
                }
                let done_at = self.now + u64::from(level.latency(config)) * self.scale;
                self.pending.push_back(Outstanding { done_at, at_instr: self.instructions });
                self.last_long_done = done_at;
            }
        }
    }

    /// Charges a front-end (instruction fetch) service; cheap for L1/L2,
    /// treated as a long-latency stall beyond that.
    pub fn instr_fetch(&mut self, level: ServiceLevel, config: &SystemConfig) {
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.now += L2_EXPOSED_CYCLES * self.scale,
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                // Front-end misses drain the pipeline: expose half the full
                // latency (fetch-ahead hides the rest). `L × scale / 2` is
                // `L × issue_width`, always integral.
                self.now += u64::from(level.latency(config)) * self.scale / 2;
            }
        }
    }

    /// Drains outstanding misses (call once at the end of a run).
    pub fn finish(&mut self) {
        if let Some(back) = self.pending.back() {
            self.now = self.now.max(back.done_at);
        }
        self.pending.clear();
    }

    /// Total cycles so far (rounded up).
    pub fn cycles(&self) -> u64 {
        self.now.div_ceil(self.scale)
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Misses currently in flight (issued, not yet completed).
    pub fn outstanding_misses(&self) -> usize {
        self.pending.iter().filter(|o| o.done_at > self.now).count()
    }
}

/// The timing model selected by [`SystemConfig::timing`], behind one
/// call surface so the simulation drivers are mode-agnostic.
///
/// The analytic variant ignores the DRAM bank state (its memory service
/// time is a constant per row-buffer class); the event variant routes every
/// long-latency completion through [`DramTiming`].
#[derive(Clone, Debug)]
pub enum TimingModel {
    /// The analytic MLP-aware formula.
    Analytic(CoreTiming),
    /// The discrete-event core with DRAM bank queueing.
    Event(EventCore),
}

impl TimingModel {
    /// Builds the model selected by `config.timing`.
    pub fn new(config: &SystemConfig) -> Self {
        match config.timing {
            TimingMode::Analytic => TimingModel::Analytic(CoreTiming::new(config)),
            TimingMode::Event => TimingModel::Event(EventCore::new(config)),
        }
    }

    /// Which mode this model implements.
    pub fn mode(&self) -> TimingMode {
        match self {
            TimingModel::Analytic(_) => TimingMode::Analytic,
            TimingModel::Event(_) => TimingMode::Event,
        }
    }

    /// Retires `n` non-memory instructions.
    pub fn retire(&mut self, n: u32) {
        match self {
            TimingModel::Analytic(t) => t.retire(n),
            TimingModel::Event(t) => t.retire(n),
        }
    }

    /// Charges one instruction fetch serviced at `level` for the cache
    /// line `line` (byte address >> 6; used for bank mapping in event
    /// mode, ignored by the analytic model).
    pub fn instr_fetch(
        &mut self,
        level: ServiceLevel,
        line: u64,
        dram: &mut DramTiming,
        config: &SystemConfig,
    ) {
        match self {
            TimingModel::Analytic(t) => t.instr_fetch(level, config),
            TimingModel::Event(t) => t.instr_fetch(level, line, dram),
        }
    }

    /// Accounts for one memory operation on cache line `line` serviced at
    /// `level`.
    pub fn memory_op(
        &mut self,
        level: ServiceLevel,
        dependent: bool,
        line: u64,
        dram: &mut DramTiming,
        config: &SystemConfig,
    ) {
        match self {
            TimingModel::Analytic(t) => t.memory_op(level, dependent, config),
            TimingModel::Event(t) => t.memory_op(level, dependent, line, dram),
        }
    }

    /// Charges background memory traffic (prefetch fills, dirty
    /// writebacks) against the DRAM banks without stalling the core.
    /// A no-op for the analytic model.
    pub fn background(&mut self, traffic: &[MemTraffic], dram: &mut DramTiming) {
        if let TimingModel::Event(t) = self {
            for t_req in traffic {
                t.background(t_req, dram);
            }
        }
    }

    /// Drains outstanding misses (call once at the end of a run).
    pub fn finish(&mut self) {
        match self {
            TimingModel::Analytic(t) => t.finish(),
            TimingModel::Event(t) => t.finish(),
        }
    }

    /// Total cycles so far (rounded up).
    pub fn cycles(&self) -> u64 {
        match self {
            TimingModel::Analytic(t) => t.cycles(),
            TimingModel::Event(t) => t.cycles(),
        }
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        match self {
            TimingModel::Analytic(t) => t.instructions(),
            TimingModel::Event(t) => t.instructions(),
        }
    }

    /// Misses currently in flight (issued, not yet completed).
    pub fn outstanding_misses(&self) -> usize {
        match self {
            TimingModel::Analytic(t) => t.outstanding_misses(),
            TimingModel::Event(t) => t.outstanding_misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_single_core()
    }

    #[test]
    fn compute_only_ipc_equals_width() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        t.retire(3000);
        t.finish();
        let ipc = t.instructions() as f64 / t.cycles() as f64;
        assert!((ipc - 3.0).abs() < 0.01, "ipc = {ipc}");
    }

    #[test]
    fn independent_misses_overlap() {
        let c = cfg();
        // 8 independent memory accesses: with 16 MSHRs they all overlap.
        let mut overlapped = CoreTiming::new(&c);
        for _ in 0..8 {
            overlapped.memory_op(ServiceLevel::Memory, false, &c);
        }
        overlapped.finish();

        // The same 8 accesses serialized by dependence.
        let mut serial = CoreTiming::new(&c);
        for _ in 0..8 {
            serial.memory_op(ServiceLevel::Memory, true, &c);
        }
        serial.finish();

        assert!(
            serial.cycles() > overlapped.cycles() * 5,
            "dependent chain ({}) must be far slower than parallel misses ({})",
            serial.cycles(),
            overlapped.cycles()
        );
    }

    #[test]
    fn mshr_limit_caps_parallelism() {
        let mut c = cfg();
        c.mshrs = 2;
        let mut narrow = CoreTiming::new(&c);
        for _ in 0..32 {
            narrow.memory_op(ServiceLevel::Memory, false, &c);
        }
        narrow.finish();

        let wide_cfg = cfg();
        let mut wide = CoreTiming::new(&wide_cfg);
        for _ in 0..32 {
            wide.memory_op(ServiceLevel::Memory, false, &wide_cfg);
        }
        wide.finish();

        assert!(narrow.cycles() > wide.cycles(), "fewer MSHRs must cost cycles");
    }

    #[test]
    fn rob_limits_run_ahead() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        // One miss, then far more compute than the ROB can hold: the miss
        // must eventually block retirement.
        t.memory_op(ServiceLevel::Memory, false, &c);
        t.retire(10_000);
        t.finish();
        // 10_001 instructions at width 3 is ~3334 cycles; the 242-cycle miss
        // is fully hidden, so total is just over the compute time.
        let cycles = t.cycles();
        assert!(cycles >= 3334, "cycles = {cycles}");
        assert!(cycles < 3600, "miss should be mostly hidden: {cycles}");
    }

    #[test]
    fn llc_hits_cost_less_than_memory() {
        let c = cfg();
        let mut llc = CoreTiming::new(&c);
        let mut mem = CoreTiming::new(&c);
        for _ in 0..1000 {
            llc.memory_op(ServiceLevel::Llc, true, &c);
            mem.memory_op(ServiceLevel::Memory, true, &c);
        }
        llc.finish();
        mem.finish();
        assert!(llc.cycles() < mem.cycles() / 2);
    }

    #[test]
    fn finish_drains_pending() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        t.memory_op(ServiceLevel::Memory, false, &c);
        assert_eq!(t.outstanding_misses(), 1);
        t.finish();
        assert_eq!(t.outstanding_misses(), 0);
        assert!(t.cycles() >= u64::from(ServiceLevel::Memory.latency(&c)));
    }

    /// The fixed-point conversion is exact rational arithmetic: a canonical
    /// stream pins the cycle count, derived by hand in sub-slots
    /// (scale = 6): retire(1000) → 2000; Memory op → 2002, done 3454;
    /// dependent Memory op → stall to 3454, done 4906; retire(10) → 3474;
    /// finish → 4906; ceil(4906/6) = 818.
    #[test]
    fn analytic_cycles_are_exact_and_pinned() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        t.retire(1000);
        t.memory_op(ServiceLevel::Memory, false, &c);
        t.memory_op(ServiceLevel::Memory, true, &c);
        t.retire(10);
        t.finish();
        assert_eq!(t.cycles(), 818);
        assert_eq!(t.instructions(), 1012);
    }

    #[test]
    fn timing_mode_parses_and_displays() {
        assert_eq!(TimingMode::parse("analytic"), Some(TimingMode::Analytic));
        assert_eq!(TimingMode::parse(" Event "), Some(TimingMode::Event));
        assert_eq!(TimingMode::parse("cycle-accurate"), None);
        assert_eq!(TimingMode::Event.to_string(), "event");
        assert_eq!(TimingMode::default(), TimingMode::Analytic);
    }

    #[test]
    fn facade_selects_model_by_config() {
        let analytic = TimingModel::new(&cfg());
        assert_eq!(analytic.mode(), TimingMode::Analytic);
        let event = TimingModel::new(&cfg().with_timing(TimingMode::Event));
        assert_eq!(event.mode(), TimingMode::Event);
    }
}
