//! Simplified out-of-order core timing model.
//!
//! The model converts a stream of retired instructions and memory-service
//! levels into cycles. It captures the three effects that matter for LLC
//! replacement studies:
//!
//! 1. **Issue width** — non-memory instructions retire at `issue_width` per
//!    cycle.
//! 2. **Memory-level parallelism** — long-latency accesses (LLC and beyond)
//!    overlap, bounded by the MSHR count and by the reorder buffer: a miss
//!    blocks retirement once `rob_entries` younger instructions have been
//!    issued behind it.
//! 3. **Dependent chains** — an access flagged as address-dependent on the
//!    previous one (pointer chasing) cannot issue until that access's data
//!    returns, serializing misses regardless of MSHR capacity.
//!
//! L1 hits are considered fully pipelined; L2 hits expose a small fixed
//! penalty. This is deliberately simpler than a cycle-accurate core: the
//! paper's results are *relative* IPC across LLC policies, which this model
//! preserves because cycles are driven by the same LLC hit/miss outcomes a
//! detailed core would see.

use std::collections::VecDeque;

use crate::config::SystemConfig;
use crate::hierarchy::ServiceLevel;

/// Cycles of exposed latency charged for an L2 hit (the OOO window hides
/// the rest).
const L2_EXPOSED_CYCLES: f64 = 1.0;

#[derive(Clone, Copy, Debug)]
struct Outstanding {
    done_at: f64,
    at_instr: u64,
}

/// Per-core cycle accounting.
///
/// ```
/// use cache_sim::{CoreTiming, SystemConfig};
/// use cache_sim::ServiceLevel;
///
/// let cfg = SystemConfig::paper_single_core();
/// let mut t = CoreTiming::new(&cfg);
/// t.retire(300);
/// t.memory_op(ServiceLevel::L1, false, &cfg);
/// assert_eq!(t.instructions(), 301);
/// t.finish();
/// assert!(t.cycles() >= 100); // 300 instructions at width 3
/// ```
#[derive(Clone, Debug)]
pub struct CoreTiming {
    issue_width: f64,
    rob_entries: u64,
    mshrs: usize,
    cycles: f64,
    instructions: u64,
    pending: VecDeque<Outstanding>,
    last_long_done: f64,
}

impl CoreTiming {
    /// Creates a timing model from the system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            issue_width: f64::from(config.issue_width),
            rob_entries: u64::from(config.rob_entries),
            mshrs: config.mshrs as usize,
            cycles: 0.0,
            instructions: 0,
            pending: VecDeque::with_capacity(config.mshrs as usize),
            last_long_done: 0.0,
        }
    }

    /// Retires `n` non-memory instructions.
    pub fn retire(&mut self, n: u32) {
        self.instructions += u64::from(n);
        self.cycles += f64::from(n) / self.issue_width;
    }

    /// Accounts for one memory operation serviced at `level`.
    ///
    /// `dependent` marks an access whose address depends on the previous
    /// access's data.
    pub fn memory_op(&mut self, level: ServiceLevel, dependent: bool, config: &SystemConfig) {
        self.instructions += 1;
        self.cycles += 1.0 / self.issue_width;

        // Retire any misses that completed in the meantime.
        while let Some(front) = self.pending.front() {
            if front.done_at <= self.cycles {
                self.pending.pop_front();
            } else {
                break;
            }
        }

        if dependent {
            // Cannot even compute the address before the previous access's
            // data arrives.
            self.cycles = self.cycles.max(self.last_long_done);
        }

        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => {
                self.cycles += L2_EXPOSED_CYCLES;
            }
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                // MSHR full: stall until the oldest miss returns.
                while self.pending.len() >= self.mshrs {
                    let front = self.pending.pop_front().expect("len >= mshrs > 0");
                    self.cycles = self.cycles.max(front.done_at);
                }
                // ROB full behind the oldest miss: stall for it.
                while let Some(front) = self.pending.front() {
                    if self.instructions - front.at_instr >= self.rob_entries {
                        self.cycles = self.cycles.max(front.done_at);
                        self.pending.pop_front();
                    } else {
                        break;
                    }
                }
                let done_at = self.cycles + f64::from(level.latency(config));
                self.pending.push_back(Outstanding { done_at, at_instr: self.instructions });
                self.last_long_done = done_at;
            }
        }
    }

    /// Charges a front-end (instruction fetch) service; cheap for L1/L2,
    /// treated as a long-latency stall beyond that.
    pub fn instr_fetch(&mut self, level: ServiceLevel, config: &SystemConfig) {
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.cycles += L2_EXPOSED_CYCLES,
            ServiceLevel::Llc | ServiceLevel::MemoryRowHit | ServiceLevel::Memory => {
                // Front-end misses drain the pipeline: expose a fraction of
                // the full latency (fetch-ahead hides some of it).
                self.cycles += f64::from(level.latency(config)) * 0.5;
            }
        }
    }

    /// Drains outstanding misses (call once at the end of a run).
    pub fn finish(&mut self) {
        if let Some(back) = self.pending.back() {
            self.cycles = self.cycles.max(back.done_at);
        }
        self.pending.clear();
    }

    /// Total cycles so far (rounded up).
    pub fn cycles(&self) -> u64 {
        self.cycles.ceil() as u64
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_single_core()
    }

    #[test]
    fn compute_only_ipc_equals_width() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        t.retire(3000);
        t.finish();
        let ipc = t.instructions() as f64 / t.cycles() as f64;
        assert!((ipc - 3.0).abs() < 0.01, "ipc = {ipc}");
    }

    #[test]
    fn independent_misses_overlap() {
        let c = cfg();
        // 8 independent memory accesses: with 16 MSHRs they all overlap.
        let mut overlapped = CoreTiming::new(&c);
        for _ in 0..8 {
            overlapped.memory_op(ServiceLevel::Memory, false, &c);
        }
        overlapped.finish();

        // The same 8 accesses serialized by dependence.
        let mut serial = CoreTiming::new(&c);
        for _ in 0..8 {
            serial.memory_op(ServiceLevel::Memory, true, &c);
        }
        serial.finish();

        assert!(
            serial.cycles() > overlapped.cycles() * 5,
            "dependent chain ({}) must be far slower than parallel misses ({})",
            serial.cycles(),
            overlapped.cycles()
        );
    }

    #[test]
    fn mshr_limit_caps_parallelism() {
        let mut c = cfg();
        c.mshrs = 2;
        let mut narrow = CoreTiming::new(&c);
        for _ in 0..32 {
            narrow.memory_op(ServiceLevel::Memory, false, &c);
        }
        narrow.finish();

        let wide_cfg = cfg();
        let mut wide = CoreTiming::new(&wide_cfg);
        for _ in 0..32 {
            wide.memory_op(ServiceLevel::Memory, false, &wide_cfg);
        }
        wide.finish();

        assert!(narrow.cycles() > wide.cycles(), "fewer MSHRs must cost cycles");
    }

    #[test]
    fn rob_limits_run_ahead() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        // One miss, then far more compute than the ROB can hold: the miss
        // must eventually block retirement.
        t.memory_op(ServiceLevel::Memory, false, &c);
        t.retire(10_000);
        t.finish();
        // 10_001 instructions at width 3 is ~3334 cycles; the 242-cycle miss
        // is fully hidden, so total is just over the compute time.
        let cycles = t.cycles();
        assert!(cycles >= 3334, "cycles = {cycles}");
        assert!(cycles < 3600, "miss should be mostly hidden: {cycles}");
    }

    #[test]
    fn llc_hits_cost_less_than_memory() {
        let c = cfg();
        let mut llc = CoreTiming::new(&c);
        let mut mem = CoreTiming::new(&c);
        for _ in 0..1000 {
            llc.memory_op(ServiceLevel::Llc, true, &c);
            mem.memory_op(ServiceLevel::Memory, true, &c);
        }
        llc.finish();
        mem.finish();
        assert!(llc.cycles() < mem.cycles() / 2);
    }

    #[test]
    fn finish_drains_pending() {
        let c = cfg();
        let mut t = CoreTiming::new(&c);
        t.memory_op(ServiceLevel::Memory, false, &c);
        t.finish();
        assert!(t.cycles() >= u64::from(ServiceLevel::Memory.latency(&c)));
    }
}
