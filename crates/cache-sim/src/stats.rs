//! Per-cache statistics.

use crate::access::AccessKind;

/// Hit/miss counters for one access kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Accesses of this kind.
    pub accesses: u64,
    /// Hits of this kind.
    pub hits: u64,
}

impl KindCounts {
    /// Misses of this kind (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// Statistics for one cache level.
///
/// ```
/// use cache_sim::{AccessKind, CacheStats};
///
/// let mut s = CacheStats::default();
/// s.record(AccessKind::Load, true);
/// s.record(AccessKind::Load, false);
/// assert_eq!(s.demand_hits(), 1);
/// assert_eq!(s.demand_misses(), 1);
/// assert!((s.hit_rate() - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counters indexed by [`AccessKind::index`].
    pub by_kind: [KindCounts; 4],
    /// Dirty evictions sent to the level below.
    pub writebacks_out: u64,
    /// Fills the policy chose to bypass.
    pub bypasses: u64,
    /// Lines evicted (valid victims replaced).
    pub evictions: u64,
}

impl CacheStats {
    /// Records one access of `kind`.
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        let c = &mut self.by_kind[kind.index()];
        c.accesses += 1;
        if hit {
            c.hits += 1;
        }
    }

    /// Total accesses of all kinds.
    pub fn accesses(&self) -> u64 {
        self.by_kind.iter().map(|c| c.accesses).sum()
    }

    /// Total hits of all kinds.
    pub fn hits(&self) -> u64 {
        self.by_kind.iter().map(|c| c.hits).sum()
    }

    /// Total misses of all kinds.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Demand (load + RFO) accesses.
    pub fn demand_accesses(&self) -> u64 {
        self.by_kind[0].accesses + self.by_kind[1].accesses
    }

    /// Demand (load + RFO) hits.
    pub fn demand_hits(&self) -> u64 {
        self.by_kind[0].hits + self.by_kind[1].hits
    }

    /// Demand (load + RFO) misses.
    pub fn demand_misses(&self) -> u64 {
        self.demand_accesses() - self.demand_hits()
    }

    /// Overall hit rate in `[0, 1]`; 0 if there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }

    /// Demand hit rate in `[0, 1]`; 0 if there were no demand accesses.
    pub fn demand_hit_rate(&self) -> f64 {
        if self.demand_accesses() == 0 {
            0.0
        } else {
            self.demand_hits() as f64 / self.demand_accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_counters_are_separate() {
        let mut s = CacheStats::default();
        s.record(AccessKind::Prefetch, true);
        s.record(AccessKind::Writeback, false);
        s.record(AccessKind::Rfo, true);
        assert_eq!(s.by_kind[AccessKind::Prefetch.index()].hits, 1);
        assert_eq!(s.by_kind[AccessKind::Writeback.index()].misses(), 1);
        assert_eq!(s.demand_hits(), 1);
        assert_eq!(s.accesses(), 3);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.demand_hit_rate(), 0.0);
    }
}
