//! Quick throughput/realism sanity check for the simulator (dev tool).
use cache_sim::{SingleCoreSystem, SystemConfig, TrueLru};
use std::time::Instant;

fn main() {
    let cfg = SystemConfig::paper_single_core();
    for name in ["429.mcf", "470.lbm", "450.soplex", "416.gamess", "471.omnetpp", "403.gcc"] {
        let wl = workloads::spec2006(name).unwrap();
        let mut sys = SingleCoreSystem::new(&cfg, Box::new(TrueLru::new(&cfg.llc)));
        let mut s = wl.stream();
        let t0 = Instant::now();
        sys.warm_up(&mut s, 200_000);
        let stats = sys.run(s, 1_000_000);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{name:16} ipc={:.3} mpki={:6.2} llc_hit%={:5.1} l1d_hit%={:5.1} [{:.1}s, {:.2}M instr/s]",
            stats.ipc(), stats.llc_demand_mpki(), stats.llc_hit_rate_pct(),
            stats.l1d.hit_rate()*100.0, dt, 1.2 / dt
        );
    }
}
