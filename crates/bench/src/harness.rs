//! A minimal wall-clock benchmark harness: warmup, N timed iterations,
//! median/p90 summary, JSON artifacts under `results/`.
//!
//! Replaces the external `criterion` dependency so `cargo bench` works in
//! a hermetic (offline, registry-free) build. Iteration counts are small
//! by default and overridable with `BENCH_WARMUP` / `BENCH_ITERS`; the
//! goal is regression visibility, not microsecond-precise statistics.

use std::hint::black_box;
use std::time::Instant;

/// Iterations of `f` discarded before timing starts.
fn warmup_iters() -> u32 {
    env_u32("BENCH_WARMUP", 1)
}

/// Timed iterations of `f` per measurement.
fn timed_iters() -> u32 {
    env_u32("BENCH_ITERS", 7)
}

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub name: String,
    pub iters: u32,
    pub median_ns: u64,
    pub p90_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Measurement {
    /// A single-shot measurement (used for whole-target wall clock).
    pub fn once(name: &str, elapsed_ns: u64) -> Self {
        Self {
            name: name.to_string(),
            iters: 1,
            median_ns: elapsed_ns,
            p90_ns: elapsed_ns,
            min_ns: elapsed_ns,
            max_ns: elapsed_ns,
        }
    }

    /// Summarizes externally collected per-iteration samples — for
    /// callers that interleave measurements themselves (e.g. paired
    /// A/B ratio benches) instead of going through [`bench`].
    pub fn from_samples(name: &str, mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        let n = samples.len();
        // Nearest-rank percentiles on the sorted sample vector.
        let rank = |q: f64| samples[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
        Self {
            name: name.to_string(),
            iters: n as u32,
            median_ns: rank(0.50),
            p90_ns: rank(0.90),
            min_ns: samples[0],
            max_ns: samples[n - 1],
        }
    }
}

/// Times `f` over `BENCH_WARMUP` discarded + `BENCH_ITERS` timed
/// iterations and prints a one-line median/p90 summary.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    for _ in 0..warmup_iters() {
        black_box(f());
    }
    let samples: Vec<u64> = (0..timed_iters().max(1))
        .map(|_| {
            let begin = Instant::now();
            black_box(f());
            begin.elapsed().as_nanos() as u64
        })
        .collect();
    let m = Measurement::from_samples(name, samples);
    println!(
        "  {:<44} median {:>12}  p90 {:>12}  ({} iters)",
        m.name,
        format_ns(m.median_ns),
        format_ns(m.p90_ns),
        m.iters,
    );
    m
}

/// A [`Measurement`] annotated with how many cache accesses one iteration
/// performed, from which throughput derives.
#[derive(Clone, Debug)]
pub struct Throughput {
    pub measurement: Measurement,
    /// Accesses performed per timed iteration.
    pub accesses: u64,
}

impl Throughput {
    /// Median replay throughput in accesses per second.
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 * 1e9 / self.measurement.median_ns.max(1) as f64
    }
}

/// Saves throughput rows as `results/bench/<target>.json` — the
/// perf-trajectory artifacts: one file per bench target, one row per
/// (policy, path, level) with both raw timings and accesses/sec.
pub fn write_throughput_json(target: &str, rows: &[Throughput]) {
    let dir = experiments::report::results_dir().join("bench");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let entries: Vec<String> = rows
        .iter()
        .map(|t| {
            let m = &t.measurement;
            format!(
                "  {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"p90_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}, \"accesses\": {}, \"accesses_per_sec\": {:.0}}}",
                m.name.replace('"', "'"),
                m.iters,
                m.median_ns,
                m.p90_ns,
                m.min_ns,
                m.max_ns,
                t.accesses,
                t.accesses_per_sec(),
            )
        })
        .collect();
    let json = format!(
        "{{\n\"target\": \"{}\",\n\"rows\": [\n{}\n]\n}}\n",
        target.replace('"', "'"),
        entries.join(",\n"),
    );
    let path = dir.join(format!("{target}.json"));
    if std::fs::write(&path, json).is_ok() {
        println!("  saved {}", path.display());
    }
}

/// Renders a nanosecond figure with a human-scale unit.
fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

/// Saves measurements as `results/bench_<target>.json` (no serde; the
/// schema is flat enough to format by hand).
pub fn write_json(target: &str, measurements: &[Measurement]) {
    let dir = experiments::report::results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "  {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"p90_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                m.name.replace('"', "'"),
                m.iters,
                m.median_ns,
                m.p90_ns,
                m.min_ns,
                m.max_ns,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"target\": \"{}\",\n\"measurements\": [\n{}\n]\n}}\n",
        target.replace('"', "'"),
        entries.join(",\n"),
    );
    let path = dir.join(format!("bench_{target}.json"));
    if std::fs::write(&path, json).is_ok() {
        println!("  saved {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let m = Measurement::from_samples("t", vec![50, 10, 40, 20, 30]);
        assert_eq!(m.iters, 5);
        assert_eq!(m.median_ns, 30);
        assert_eq!(m.p90_ns, 50);
        assert_eq!(m.min_ns, 10);
        assert_eq!(m.max_ns, 50);
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let m = Measurement::from_samples("t", vec![123]);
        assert_eq!((m.median_ns, m.p90_ns, m.min_ns, m.max_ns), (123, 123, 123, 123));
    }

    #[test]
    fn bench_runs_and_counts_iterations() {
        // Isolate from user env overrides.
        std::env::remove_var("BENCH_ITERS");
        let mut calls = 0u32;
        let m = bench("noop", || calls += 1);
        assert_eq!(m.iters, 7);
        assert!(calls >= m.iters);
    }

    #[test]
    fn formats_scale_with_magnitude() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(25_000), "25.00 µs");
        assert_eq!(format_ns(25_000_000), "25.00 ms");
        assert_eq!(format_ns(2_500_000_000), "2.500 s");
    }
}
