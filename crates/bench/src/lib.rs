//! Shared glue for the benchmark targets that regenerate the paper's
//! tables and figures, plus a dependency-free wall-clock micro-benchmark
//! harness (the workspace builds offline; Criterion is deliberately not
//! used).
//!
//! Each `cargo bench` target prints an aligned table to stdout, saves a
//! CSV under `results/`, and reports its own wall-clock time. Timing
//! samples from [`harness::bench`] additionally land in
//! `results/bench_<target>.json`.

pub mod harness;

use experiments::Scale;
use std::time::Instant;

/// Standard preamble: resolve the scale and announce the target.
pub fn start(target: &str) -> Scale {
    let scale = Scale::from_env();
    println!("[{target}] RLR_SCALE={scale}");
    scale
}

/// Runs a one-shot bench body (a figure/table regeneration) and reports
/// its wall-clock time, both to stdout and to the JSON sidecar.
pub fn timed<R>(target: &str, body: impl FnOnce() -> R) -> R {
    let begin = Instant::now();
    let out = body();
    let elapsed = begin.elapsed();
    println!("[{target}] completed in {:.3} s", elapsed.as_secs_f64());
    harness::write_json(
        target,
        &[harness::Measurement::once(target, elapsed.as_nanos() as u64)],
    );
    out
}
