//! Shared glue for the benchmark targets that regenerate the paper's
//! tables and figures. Each `cargo bench` target prints an aligned table
//! to stdout and saves a CSV under `results/`.

use experiments::Scale;

/// Standard preamble: resolve the scale and announce the target.
pub fn start(target: &str) -> Scale {
    let scale = Scale::from_env();
    println!("[{target}] RLR_SCALE={scale}");
    scale
}
