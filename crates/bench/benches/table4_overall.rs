//! Regenerates Table IV: overall speedups, 1-core and 4-core.
fn main() {
    let scale = rlr_bench::start("table4");
    rlr_bench::timed("table4", || {
        experiments::tables::table4(scale).emit();
    });
}
