//! Regenerates Fig. 12: demand MPKI comparison.
fn main() {
    let scale = rlr_bench::start("fig12");
    rlr_bench::timed("fig12", || {
        experiments::figures::fig12(scale).emit();
    });
}
