//! Regenerates Fig. 4: |preuse - reuse| distribution.
fn main() {
    let scale = rlr_bench::start("fig04");
    rlr_bench::timed("fig04", || {
        experiments::figures::fig4(scale).emit();
    });
}
