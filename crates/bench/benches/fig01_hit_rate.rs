//! Regenerates Fig. 1: LLC hit rate incl. the RL agent and Belady.
fn main() {
    let scale = rlr_bench::start("fig01");
    rlr_bench::timed("fig01", || {
        experiments::figures::fig1(scale).emit();
    });
}
