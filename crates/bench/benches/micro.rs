//! Criterion micro-benchmarks: policy decision latency, simulator and MLP
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cache_sim::{SingleCoreSystem, SystemConfig};
use experiments::PolicyKind;
use rl::Mlp;

/// Simulated instructions per iteration for the end-to-end benches.
const SIM_INSTRUCTIONS: u64 = 200_000;

fn policy_throughput(c: &mut Criterion) {
    let config = SystemConfig::paper_single_core();
    let workload = workloads::spec2006("429.mcf").expect("known benchmark");
    let mut group = c.benchmark_group("simulate_mcf_200k_instructions");
    group.sample_size(10);
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Hawkeye,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut system =
                    SingleCoreSystem::new(&config, kind.build(&config.llc, None));
                black_box(system.run(workload.stream(), SIM_INSTRUCTIONS))
            });
        });
    }
    group.finish();
}

fn mlp_inference(c: &mut Criterion) {
    // The paper's agent: 334 -> 175 -> 16.
    let net = Mlp::new(334, 175, 16, 7);
    let input = vec![0.25f32; 334];
    c.bench_function("mlp_334_175_16_inference", |b| {
        b.iter(|| black_box(net.predict(black_box(&input))))
    });
}

criterion_group!(benches, policy_throughput, mlp_inference);
criterion_main!(benches);
