//! Micro-benchmarks: policy decision latency, simulator and MLP
//! throughput, on the in-tree wall-clock harness.

use std::hint::black_box;

use cache_sim::{SingleCoreSystem, SystemConfig};
use experiments::PolicyKind;
use rl::Mlp;
use rlr_bench::harness;

/// Simulated instructions per iteration for the end-to-end benches.
const SIM_INSTRUCTIONS: u64 = 200_000;

fn main() {
    let _ = rlr_bench::start("micro");
    let mut measurements = Vec::new();

    let config = SystemConfig::paper_single_core();
    let workload = workloads::spec2006("429.mcf").expect("known benchmark");
    println!("simulate_mcf_200k_instructions:");
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Hawkeye,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
    ] {
        measurements.push(harness::bench(
            &format!("simulate_mcf_200k/{}", kind.name()),
            || {
                let mut system = SingleCoreSystem::new(&config, kind.build(&config.llc, None));
                black_box(system.run(workload.stream(), SIM_INSTRUCTIONS))
            },
        ));
    }

    // The paper's agent: 334 -> 175 -> 16.
    let net = Mlp::new(334, 175, 16, 7);
    let input = vec![0.25f32; 334];
    println!("mlp inference:");
    measurements.push(harness::bench("mlp_334_175_16_inference", || {
        // One inference is far below timer resolution; time a burst.
        for _ in 0..64 {
            black_box(net.predict(black_box(&input)));
        }
    }));

    harness::write_json("micro", &measurements);
}
