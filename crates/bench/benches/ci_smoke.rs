//! CI bench smoke: guards the hot-path speedup with a sub-second replay.
//!
//! Absolute accesses/sec vary wildly across CI machines, so the gate is
//! the *ratio* between the seed path (reference cache + seed RLR policy)
//! and the packed hot path, measured
//! in-process back to back: both paths see the same machine, load, and
//! frequency scaling, and the ratio cancels them out. The run fails
//! (non-zero exit) when the measured speedup drops more than 20% below
//! the checked-in baseline in `crates/bench/ci_baseline.json`.
//!
//! Regenerate the baseline after deliberate hot-path changes with
//! `RLR_UPDATE_BENCH_BASELINE=1 cargo bench --offline -p rlr-bench --bench ci_smoke`.

use std::hint::black_box;

use cache_sim::{
    Access, LlcTrace, ReferenceCache, SetAssocCache, SingleCoreSystem, SystemConfig, TimingMode,
};
use experiments::runner::replay_llc_trace;
use experiments::PolicyKind;
use rlr::packed::LineMeta;
use rlr::scan::{self, ScanParams, ScanWays};
use rlr_bench::harness::{self, Throughput};

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/ci_baseline.json");
/// Fail when the measured speedup falls below this fraction of baseline.
const TOLERANCE: f64 = 0.8;
/// Fail when the analytic-vs-event cost ratio climbs above this multiple
/// of baseline — i.e. the analytic replay path regressed relative to the
/// (heavier) event core measured on the same machine in the same process.
const TIMING_TOLERANCE: f64 = 1.05;
/// Fail when the multi-tenant-vs-single-tenant replay cost ratio climbs
/// above this multiple of baseline — i.e. the tenancy layer (tenant
/// policy, owner mirror, QoS + DRAM-latency accounting) got more
/// expensive relative to the bare packed path it wraps. Wider than the
/// timing gate: the ratio divides two sub-100ms replays, so it carries
/// more scheduler noise than the paired-round timing median.
const TENANCY_TOLERANCE: f64 = 1.25;

fn capture_small_trace(config: &SystemConfig) -> LlcTrace {
    let mut system = SingleCoreSystem::new(config, PolicyKind::Lru.build(&config.llc, None));
    system.llc_mut().enable_capture();
    let mut stream = workloads::spec2006("429.mcf").expect("known benchmark").stream();
    system.warm_up(&mut stream, 100_000);
    let _ = system.run(stream, 400_000);
    system.llc_mut().take_capture().expect("capture enabled")
}

/// Pulls one numeric field out of the baseline JSON without a parser dep.
/// The needle includes the quotes and colon, so `"speedup":` never
/// false-matches inside `"simd_speedup":`.
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let tail = text.split(&format!("\"{key}\":")).nth(1)?;
    tail.trim_start().split(|c: char| c != '.' && !c.is_ascii_digit()).next()?.parse().ok()
}

/// The in-process victim-scan ratio: scalar reference vs lane backend over
/// LLC-shaped sets on deterministic warm-cache data. Returns
/// `scalar_min_ns / lanes_min_ns` — the SIMD-path speedup this machine
/// sees right now — plus both measurements for the JSON record.
fn victim_scan_speedup(config: &SystemConfig) -> (f64, [Throughput; 2]) {
    let sets = config.llc.sets as usize;
    let ways = usize::from(config.llc.ways);
    let lines = sets * ways;
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let now = 1u64 << 20;
    let clock = 1u64 << 24;
    let age_stamps: Vec<u64> = (0..lines).map(|_| now - (next() % 8)).collect();
    let rec_stamps: Vec<u64> = (0..lines).map(|_| clock - (next() % 4096)).collect();
    let metas: Vec<LineMeta> = (0..lines)
        .map(|_| {
            let bits = next();
            let mut meta = LineMeta::filled(bits & 0x40 != 0, bits & 0x80 != 0);
            meta.set_hit_count((bits & 0x3) as u8);
            meta
        })
        .collect();
    let params = ScanParams {
        now,
        clock,
        rd: 4,
        max_age: 3,
        age_weight: 8,
        use_type: true,
        use_hit: true,
        exact_recency: false,
    };
    let mut mins = [0.0f64; 2];
    let mut rows: Vec<Throughput> = Vec::with_capacity(2);
    for (slot, label) in ["scalar", "simd"].into_iter().enumerate() {
        let m = harness::bench(&format!("ci_smoke/victim_scan_{label}"), || {
            let mut acc = 0u64;
            for set in 0..sets {
                let range = set * ways..(set + 1) * ways;
                let scan_ways = ScanWays {
                    age_stamps: &age_stamps[range.clone()],
                    rec_stamps: &rec_stamps[range.clone()],
                    metas: &metas[range],
                    cores: &[],
                    core_rank: &[],
                };
                let outcome = if slot == 0 {
                    scan::scan_scalar(&params, &scan_ways)
                } else {
                    scan::scan_lanes(&params, &scan_ways)
                };
                acc ^= outcome.best_key;
            }
            black_box(acc)
        });
        mins[slot] = m.min_ns.max(1) as f64;
        rows.push(Throughput { measurement: m, accesses: sets as u64 });
    }
    let rows: [Throughput; 2] = rows.try_into().expect("two scan rows");
    (mins[0] / mins[1], rows)
}

/// The timing-layer cost ratio: full-system 429.mcf runs under both
/// timing modes, *paired per round* — analytic then event back to back —
/// so frequency scaling and load drift cancel within each round. Returns
/// the median per-round `analytic_ns / event_ns` ratio — which rises when
/// the analytic replay path gets slower relative to the event core — plus
/// a summary row per mode for the JSON record.
fn timing_mode_ratio(config: &SystemConfig) -> (f64, [Throughput; 2]) {
    const INSTRUCTIONS: u64 = 150_000;
    const ROUNDS: usize = 15;
    let run = |mode: TimingMode| {
        let timed = config.with_timing(mode);
        let mut system = SingleCoreSystem::new(&timed, PolicyKind::Rlr.build(&timed.llc, None));
        let stream = workloads::spec2006("429.mcf").expect("known benchmark").stream();
        black_box(system.run(stream, INSTRUCTIONS).cycles)
    };
    run(TimingMode::Analytic); // warm caches and branch predictors
    run(TimingMode::Event);
    let mut analytic_ns = Vec::with_capacity(ROUNDS);
    let mut event_ns = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let begin = std::time::Instant::now();
        run(TimingMode::Analytic);
        let a = begin.elapsed().as_nanos() as u64;
        let begin = std::time::Instant::now();
        run(TimingMode::Event);
        let e = begin.elapsed().as_nanos() as u64;
        analytic_ns.push(a);
        event_ns.push(e);
        ratios.push(a as f64 / e.max(1) as f64);
    }
    ratios.sort_unstable_by(f64::total_cmp);
    let rows = [
        Throughput {
            measurement: harness::Measurement::from_samples(
                "ci_smoke/timing_analytic",
                analytic_ns,
            ),
            accesses: INSTRUCTIONS,
        },
        Throughput {
            measurement: harness::Measurement::from_samples("ci_smoke/timing_event", event_ns),
            accesses: INSTRUCTIONS,
        },
    ];
    (ratios[ROUNDS / 2], rows)
}

/// Materializes the pinned three-class tenant mix (all-synthetic sources,
/// so no corpus capture) into `(tenant, pc, addr)` rows, each tenant
/// relocated into its own address space like the tenancy experiment does.
fn tenant_mix_rows(n: usize) -> Vec<(u8, u64, u64)> {
    let mix = workloads::TenantMix::default_three_class();
    let streams: Vec<_> = mix
        .tenants
        .iter()
        .map(|t| t.source.synthetic_stream().expect("the default mix is synthetic"))
        .collect();
    workloads::WeightedInterleave::new(streams, &mix.rates(), mix.seed)
        .take(n)
        .map(|(t, a)| {
            let salt = (t as u64 + 1) << 40;
            (t as u8, a.pc ^ salt, (a.line ^ salt) << 6)
        })
        .collect()
}

/// The tenancy-layer cost ratio: the same interleaved mix through the
/// multi-tenant LLC (learned-priority mode — the mode with every table
/// active) and through the bare packed cache + RLR policy it wraps.
/// Returns `tenant_min_ns / single_min_ns` plus both rows for the JSON
/// record.
fn tenancy_replay_ratio() -> (f64, [Throughput; 2]) {
    const ACCESSES: usize = 60_000;
    let rows = tenant_mix_rows(ACCESSES);
    let llc = cache_sim::CacheConfig { sets: 256, ways: 8, latency: 26 };
    let mut cfg = SystemConfig::paper_single_core();
    cfg.llc = llc;
    let tenant = harness::bench("tenancy/replay", || {
        let mut sys = tenancy::MultiTenantLlc::new(
            &cfg,
            3,
            tenancy::IsolationMode::LearnedPriority(vec![4, 1, 0]),
        );
        for &(t, pc, addr) in &rows {
            sys.access(t, pc, addr, cache_sim::AccessKind::Load);
        }
        black_box(sys.qos_all().iter().map(|q| q.hits).sum::<u64>())
    });
    let single = harness::bench("tenancy/single_tenant", || {
        let mut cache = SetAssocCache::new("packed", llc, PolicyKind::Rlr.build(&llc, None));
        let mut hits = 0u64;
        for (seq, &(_, pc, addr)) in rows.iter().enumerate() {
            let access = Access {
                pc,
                addr,
                kind: cache_sim::AccessKind::Load,
                core: 0,
                seq: seq as u64,
            };
            hits += u64::from(cache.access(&access).hit);
        }
        black_box(hits)
    });
    let ratio = tenant.min_ns.max(1) as f64 / single.min_ns.max(1) as f64;
    let rows = [
        Throughput { measurement: tenant, accesses: ACCESSES as u64 },
        Throughput { measurement: single, accesses: ACCESSES as u64 },
    ];
    (ratio, rows)
}

fn main() {
    let _ = rlr_bench::start("ci_smoke");
    let config = SystemConfig::paper_single_core();
    let trace = capture_small_trace(&config);
    let accesses = trace.len() as u64;
    println!("captured smoke trace: {accesses} LLC accesses");

    let old = harness::bench("ci_smoke/seed", || {
        let mut cache = ReferenceCache::new(
            "seed",
            config.llc,
            Box::new(rlr::SeedRlrPolicy::optimized(&config.llc)),
        );
        let mut hits = 0u64;
        for (seq, r) in trace.records().iter().enumerate() {
            let access =
                Access { pc: r.pc, addr: r.line << 6, kind: r.kind, core: r.core, seq: seq as u64 };
            hits += u64::from(cache.access(&access).hit);
        }
        black_box(hits)
    });
    let new = harness::bench("ci_smoke/packed", || {
        let mut cache =
            SetAssocCache::new("packed", config.llc, PolicyKind::Rlr.build(&config.llc, None));
        black_box(replay_llc_trace(&mut cache, &trace).hits)
    });
    // Min-over-iters is the stablest estimator on a noisy CI box.
    let speedup = old.min_ns as f64 / new.min_ns.max(1) as f64;
    println!("measured packed-vs-seed speedup: {speedup:.2}x");

    let (simd_speedup, scan_rows) = victim_scan_speedup(&config);
    println!("measured lane-vs-scalar victim-scan speedup: {simd_speedup:.2}x");
    let [scan_scalar_row, scan_simd_row] = scan_rows;

    let (timing_ratio, timing_rows) = timing_mode_ratio(&config);
    println!("measured analytic-vs-event timing cost ratio: {timing_ratio:.2}");
    let [timing_analytic_row, timing_event_row] = timing_rows;

    let (tenancy_ratio, tenancy_rows) = tenancy_replay_ratio();
    println!("measured multi-tenant-vs-single-tenant replay cost ratio: {tenancy_ratio:.2}");
    let [tenancy_row, tenancy_single_row] = tenancy_rows;

    // Object-cache serving tier, recorded (not gated): requests/sec of the
    // derived admission+eviction rule on a small Zipf + flash-crowd trace,
    // so the perf-over-time report sees the `objcache/replay` trajectory
    // from the same sub-second smoke run.
    let obj_traffic = workloads::ObjectTraffic {
        catalog: 20_000,
        flash_every: 4_000,
        flash_len: 800,
        ..workloads::ObjectTraffic::internet_default()
    };
    let obj_trace: Vec<workloads::ObjectRequest> = obj_traffic.stream().take(20_000).collect();
    let obj_cfg = objcache::ObjCacheConfig::with_capacity_mib(32);
    let obj_row = harness::bench("objcache/replay/RLR-derived", || {
        black_box(
            objcache::replay(
                obj_cfg,
                objcache::ObjPolicyKind::parse("rlr").expect("pinned"),
                obj_trace.iter().copied(),
            )
            .hit_bytes,
        )
    });
    let obj_accesses = obj_trace.len() as u64;
    println!(
        "objcache replay (derived rule): {:.0} requests/sec",
        obj_accesses as f64 * 1e9 / obj_row.median_ns.max(1) as f64
    );

    harness::write_throughput_json(
        "ci_smoke",
        &[
            Throughput { measurement: old, accesses },
            Throughput { measurement: new, accesses },
            scan_scalar_row,
            scan_simd_row,
            timing_analytic_row,
            timing_event_row,
            tenancy_row,
            tenancy_single_row,
            Throughput { measurement: obj_row, accesses: obj_accesses },
        ],
    );

    if std::env::var("RLR_UPDATE_BENCH_BASELINE").is_ok_and(|v| !v.trim().is_empty()) {
        let json = format!(
            "{{\"bench\": \"ci_smoke\", \"speedup\": {speedup:.2}, \
             \"simd_speedup\": {simd_speedup:.2}, \
             \"timing_ratio\": {timing_ratio:.2}, \
             \"tenancy_ratio\": {tenancy_ratio:.2}, \
             \"note\": \"packed/reference replay + lane/scalar scan + \
             analytic/event timing + tenancy/single-tenant ratios; \
             regenerate with RLR_UPDATE_BENCH_BASELINE=1\"}}\n"
        );
        std::fs::write(BASELINE_PATH, json).expect("write baseline");
        println!("baseline updated: {BASELINE_PATH}");
        return;
    }

    let text = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => text,
        Err(_) => {
            eprintln!(
                "ci_smoke: no baseline at {BASELINE_PATH}; \
                 run with RLR_UPDATE_BENCH_BASELINE=1 to create it"
            );
            std::process::exit(1);
        }
    };
    let mut failed = false;
    for (label, measured, base) in [
        ("hot-path", speedup, baseline_field(&text, "speedup")),
        ("victim-scan SIMD", simd_speedup, baseline_field(&text, "simd_speedup")),
    ] {
        let Some(base) = base else {
            eprintln!(
                "ci_smoke: baseline at {BASELINE_PATH} lacks the {label} field; \
                 regenerate with RLR_UPDATE_BENCH_BASELINE=1"
            );
            failed = true;
            continue;
        };
        let floor = base * TOLERANCE;
        println!("{label}: baseline {base:.2}x, floor {floor:.2}x");
        if measured < floor {
            eprintln!(
                "ci_smoke: {label} speedup regressed: {measured:.2}x < {floor:.2}x \
                 (baseline {base:.2}x - 20%)"
            );
            failed = true;
        }
    }
    // The timing gate is one-sided the other way: the ratio RISING means
    // the analytic replay path slowed down relative to the event core.
    match baseline_field(&text, "timing_ratio") {
        None => {
            eprintln!(
                "ci_smoke: baseline at {BASELINE_PATH} lacks the timing_ratio field; \
                 regenerate with RLR_UPDATE_BENCH_BASELINE=1"
            );
            failed = true;
        }
        Some(base) => {
            let ceiling = base * TIMING_TOLERANCE;
            println!("timing analytic/event: baseline {base:.2}, ceiling {ceiling:.2}");
            if timing_ratio > ceiling {
                eprintln!(
                    "ci_smoke: analytic timing path regressed: ratio {timing_ratio:.2} > \
                     {ceiling:.2} (baseline {base:.2} + 5%)"
                );
                failed = true;
            }
        }
    }
    // Same one-sided shape for the tenancy layer: the ratio RISING means
    // multi-tenant replay slowed down relative to the packed path.
    match baseline_field(&text, "tenancy_ratio") {
        None => {
            eprintln!(
                "ci_smoke: baseline at {BASELINE_PATH} lacks the tenancy_ratio field; \
                 regenerate with RLR_UPDATE_BENCH_BASELINE=1"
            );
            failed = true;
        }
        Some(base) => {
            let ceiling = base * TENANCY_TOLERANCE;
            println!("tenancy multi/single: baseline {base:.2}, ceiling {ceiling:.2}");
            if tenancy_ratio > ceiling {
                eprintln!(
                    "ci_smoke: multi-tenant replay regressed: ratio {tenancy_ratio:.2} > \
                     {ceiling:.2} (baseline {base:.2} + 25%)"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("ci_smoke: OK");
}
