//! CI bench smoke: guards the hot-path speedup with a sub-second replay.
//!
//! Absolute accesses/sec vary wildly across CI machines, so the gate is
//! the *ratio* between the seed path (reference cache + seed RLR policy)
//! and the packed hot path, measured
//! in-process back to back: both paths see the same machine, load, and
//! frequency scaling, and the ratio cancels them out. The run fails
//! (non-zero exit) when the measured speedup drops more than 20% below
//! the checked-in baseline in `crates/bench/ci_baseline.json`.
//!
//! Regenerate the baseline after deliberate hot-path changes with
//! `RLR_UPDATE_BENCH_BASELINE=1 cargo bench --offline -p rlr-bench --bench ci_smoke`.

use std::hint::black_box;

use cache_sim::{Access, LlcTrace, ReferenceCache, SetAssocCache, SingleCoreSystem, SystemConfig};
use experiments::runner::replay_llc_trace;
use experiments::PolicyKind;
use rlr_bench::harness::{self, Throughput};

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/ci_baseline.json");
/// Fail when the measured speedup falls below this fraction of baseline.
const TOLERANCE: f64 = 0.8;

fn capture_small_trace(config: &SystemConfig) -> LlcTrace {
    let mut system = SingleCoreSystem::new(config, PolicyKind::Lru.build(&config.llc, None));
    system.llc_mut().enable_capture();
    let mut stream = workloads::spec2006("429.mcf").expect("known benchmark").stream();
    system.warm_up(&mut stream, 100_000);
    let _ = system.run(stream, 400_000);
    system.llc_mut().take_capture().expect("capture enabled")
}

fn baseline_speedup() -> Option<f64> {
    let text = std::fs::read_to_string(BASELINE_PATH).ok()?;
    let tail = text.split("\"speedup\":").nth(1)?;
    tail.trim_start().split(|c: char| c != '.' && !c.is_ascii_digit()).next()?.parse().ok()
}

fn main() {
    let _ = rlr_bench::start("ci_smoke");
    let config = SystemConfig::paper_single_core();
    let trace = capture_small_trace(&config);
    let accesses = trace.len() as u64;
    println!("captured smoke trace: {accesses} LLC accesses");

    let old = harness::bench("ci_smoke/seed", || {
        let mut cache = ReferenceCache::new(
            "seed",
            config.llc,
            Box::new(rlr::SeedRlrPolicy::optimized(&config.llc)),
        );
        let mut hits = 0u64;
        for (seq, r) in trace.records().iter().enumerate() {
            let access =
                Access { pc: r.pc, addr: r.line << 6, kind: r.kind, core: r.core, seq: seq as u64 };
            hits += u64::from(cache.access(&access).hit);
        }
        black_box(hits)
    });
    let new = harness::bench("ci_smoke/packed", || {
        let mut cache =
            SetAssocCache::new("packed", config.llc, PolicyKind::Rlr.build(&config.llc, None));
        black_box(replay_llc_trace(&mut cache, &trace).hits)
    });
    // Min-over-iters is the stablest estimator on a noisy CI box.
    let speedup = old.min_ns as f64 / new.min_ns.max(1) as f64;
    println!("measured packed-vs-seed speedup: {speedup:.2}x");

    harness::write_throughput_json(
        "ci_smoke",
        &[
            Throughput { measurement: old, accesses },
            Throughput { measurement: new, accesses },
        ],
    );

    if std::env::var("RLR_UPDATE_BENCH_BASELINE").is_ok_and(|v| !v.trim().is_empty()) {
        let json = format!(
            "{{\"bench\": \"ci_smoke\", \"speedup\": {speedup:.2}, \
             \"note\": \"packed/reference replay ratio; regenerate with RLR_UPDATE_BENCH_BASELINE=1\"}}\n"
        );
        std::fs::write(BASELINE_PATH, json).expect("write baseline");
        println!("baseline updated: {BASELINE_PATH}");
        return;
    }

    match baseline_speedup() {
        Some(base) => {
            let floor = base * TOLERANCE;
            println!("baseline {base:.2}x, floor {floor:.2}x");
            if speedup < floor {
                eprintln!(
                    "ci_smoke: hot-path speedup regressed: {speedup:.2}x < {floor:.2}x \
                     (baseline {base:.2}x - 20%)"
                );
                std::process::exit(1);
            }
            println!("ci_smoke: OK");
        }
        None => {
            eprintln!(
                "ci_smoke: no baseline at {BASELINE_PATH}; \
                 run with RLR_UPDATE_BENCH_BASELINE=1 to create it"
            );
            std::process::exit(1);
        }
    }
}
