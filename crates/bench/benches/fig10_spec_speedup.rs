//! Regenerates Fig. 10: SPEC CPU 2006 IPC speedups over LRU.
fn main() {
    let scale = rlr_bench::start("fig10");
    rlr_bench::timed("fig10", || {
        experiments::figures::fig10(scale).emit();
    });
}
