//! Regenerates the SIII-B hill-climbing feature selection.
fn main() {
    let scale = rlr_bench::start("hill-climb");
    rlr_bench::timed("hill-climb", || {
        experiments::ablations::hill_climb_selection(scale).emit();
    });
}
