//! Regenerates Fig. 7: victim recency distribution.
fn main() {
    let scale = rlr_bench::start("fig07");
    rlr_bench::timed("fig07", || {
        experiments::figures::fig7(scale).emit();
    });
}
