//! Regenerates Table I: hardware overhead per policy.
fn main() {
    let _ = rlr_bench::start("table1");
    rlr_bench::timed("table1", || {
        experiments::tables::table1().emit();
    });
}
