//! RLR design-choice ablations (SV-B priorities, SIV-C sweeps).
fn main() {
    let scale = rlr_bench::start("ablation");
    rlr_bench::timed("ablation", || {
        for table in experiments::ablations::all(scale) {
            table.emit();
        }
    });
}
