//! Regenerates Fig. 3: the neural-network weight heat map.
fn main() {
    let scale = rlr_bench::start("fig03");
    rlr_bench::timed("fig03", || {
        experiments::figures::fig3(scale).emit();
    });
}
