//! RL extensions: PC-augmented features and multi-agent set partitioning.
fn main() {
    let scale = rlr_bench::start("rl-ext");
    rlr_bench::timed("rl-ext", || {
        experiments::ablations::rl_extensions(scale).emit();
    });
}
