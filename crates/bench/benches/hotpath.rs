//! Perf trajectory of the hot-path rewrite: the frozen reference cache
//! (array-of-structs, `Box<dyn>` dispatch, unconditional snapshots) vs
//! the packed, statically dispatched [`SetAssocCache`].
//!
//! Two sweeps, both recorded to `results/bench/hotpath.json` in
//! accesses/sec:
//!
//! * **Per policy** — replay of the captured 429.mcf LLC trace (the
//!   paper's most memory-bound training benchmark) through both
//!   implementations; the headline number is the packed path's speedup.
//! * **Per hierarchy level** — demand accesses over cyclic working sets
//!   resident in L1, L2, and the LLC, through the full
//!   `CoreHierarchy` + `SharedLlc` stack.

use std::hint::black_box;

use cache_sim::{
    Access, CoreHierarchy, LlcTrace, ReferenceCache, SetAssocCache, SharedLlc, SingleCoreSystem,
    SystemConfig, TimingMode,
};
use experiments::runner::{
    demand_requests, replay_hierarchy, replay_llc_reader, replay_llc_trace, HierarchyReplayMode,
};
use experiments::PolicyKind;
use rlr::packed::LineMeta;
use rlr::scan::{self, ScanParams, ScanWays};
use rlr_bench::harness::{self, Measurement, Throughput};
use trace_io::TraceReader;

const WARMUP: u64 = 200_000;
const MEASURE: u64 = 800_000;

/// The LLC stream is policy-invariant, so one capture serves every
/// policy.
fn capture_mcf(config: &SystemConfig) -> LlcTrace {
    let mut system = SingleCoreSystem::new(config, PolicyKind::Lru.build(&config.llc, None));
    system.llc_mut().enable_capture();
    let mut stream = workloads::spec2006("429.mcf").expect("known benchmark").stream();
    system.warm_up(&mut stream, WARMUP);
    let _ = system.run(stream, MEASURE);
    system.llc_mut().take_capture().expect("capture enabled")
}

/// The old path's replay loop: one virtual-dispatch access per record.
fn replay_reference(cache: &mut ReferenceCache, trace: &LlcTrace) -> u64 {
    let mut hits = 0u64;
    for (seq, r) in trace.records().iter().enumerate() {
        let access =
            Access { pc: r.pc, addr: r.line << 6, kind: r.kind, core: r.core, seq: seq as u64 };
        hits += u64::from(cache.access(&access).hit);
    }
    hits
}

fn main() {
    let _ = rlr_bench::start("hotpath");
    let config = SystemConfig::paper_single_core();
    let trace = capture_mcf(&config);
    let accesses = trace.len() as u64;
    println!("captured 429.mcf LLC trace: {accesses} accesses");

    let mut rows: Vec<Throughput> = Vec::new();
    let mut headline = 0.0f64;
    println!("llc_trace_replay (429.mcf), reference vs packed:");
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::ShipPp,
        PolicyKind::Hawkeye,
        PolicyKind::Pdp,
        PolicyKind::Eva,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
        PolicyKind::RlrMulticore,
    ] {
        let old = harness::bench(&format!("llc_replay/{kind:?}/reference"), || {
            let mut cache =
                ReferenceCache::new("ref", config.llc, Box::new(kind.build(&config.llc, None)));
            black_box(replay_reference(&mut cache, &trace))
        });
        let new = harness::bench(&format!("llc_replay/{kind:?}/packed"), || {
            let mut cache = SetAssocCache::new("packed", config.llc, kind.build(&config.llc, None));
            black_box(replay_llc_trace(&mut cache, &trace).hits)
        });
        let speedup = old.median_ns as f64 / new.median_ns.max(1) as f64;
        println!("    {kind:?}: {speedup:.2}x");
        if kind == PolicyKind::Rlr {
            headline = speedup;
        }
        rows.push(Throughput { measurement: old, accesses });
        rows.push(Throughput { measurement: new, accesses });
    }
    println!("cache-only: packed RLR replay is {headline:.2}x the reference cache");

    // Headline: the whole overhaul. Old path = seed simulator (AoS cache,
    // `Box<dyn>` dispatch, unconditional snapshots, seed RLR policy with
    // three metadata arrays and a triple-age victim scan); new path =
    // packed cache + packed single-scan policy, batched replay.
    let seed = harness::bench("llc_replay/Rlr/seed", || {
        let mut cache = ReferenceCache::new(
            "seed",
            config.llc,
            Box::new(rlr::SeedRlrPolicy::optimized(&config.llc)),
        );
        black_box(replay_reference(&mut cache, &trace))
    });
    let packed = harness::bench("llc_replay/Rlr/packed_headline", || {
        let mut cache =
            SetAssocCache::new("packed", config.llc, PolicyKind::Rlr.build(&config.llc, None));
        black_box(replay_llc_trace(&mut cache, &trace).hits)
    });
    let overall = seed.median_ns as f64 / packed.median_ns.max(1) as f64;
    println!("headline: packed RLR replay is {overall:.2}x the seed simulator");
    rows.push(Throughput { measurement: seed, accesses });
    rows.push(Throughput { measurement: packed, accesses });

    // Compressed trace container vs the raw fixed-width encoding: codec
    // throughput, size ratio, and whether streaming replay from the
    // compressed form keeps up with the in-memory path.
    let compressed = trace_io::encode_trace(&trace, trace_io::DEFAULT_BLOCK_LEN)
        .expect("in-memory encode cannot fail");
    let raw_bytes = 12 + 18 * accesses; // legacy LLCT fixed-width size
    let pct = compressed.len() as f64 * 100.0 / raw_bytes as f64;
    println!(
        "trace_io: container {} bytes vs {} raw fixed-width ({pct:.1}% of raw)",
        compressed.len(),
        raw_bytes
    );
    let enc = harness::bench("trace_io/encode", || {
        black_box(
            trace_io::encode_trace(&trace, trace_io::DEFAULT_BLOCK_LEN).expect("encode").len(),
        )
    });
    let dec = harness::bench("trace_io/decode", || {
        let reader = TraceReader::new(compressed.as_slice()).expect("valid header");
        black_box(reader.read_to_trace().expect("valid container").len())
    });
    let streamed = harness::bench("llc_replay/Rlr/compressed_stream", || {
        let mut reader = TraceReader::new(compressed.as_slice()).expect("valid header");
        let mut cache =
            SetAssocCache::new("packed", config.llc, PolicyKind::Rlr.build(&config.llc, None));
        black_box(replay_llc_reader(&mut cache, &mut reader).expect("valid container").hits)
    });
    rows.push(Throughput { measurement: enc, accesses });
    rows.push(Throughput { measurement: dec, accesses });
    rows.push(Throughput { measurement: streamed, accesses });
    // The ratio itself rides along in the JSON (percent in `median_ns`,
    // single-shot), so the perf-over-time report tracks size regressions
    // alongside speed.
    rows.push(Throughput {
        measurement: Measurement::once("trace_io/compressed_pct_of_raw", pct.round() as u64),
        accesses,
    });

    // Per hierarchy level: the private levels are monomorphized TrueLru
    // caches; drive them with working sets each level can hold.
    const LEVEL_ACCESSES: u64 = 200_000;
    println!("hierarchy levels (cyclic resident working sets):");
    for (label, bytes) in
        [("l1_resident", 16u64 << 10), ("l2_resident", 128 << 10), ("llc_resident", 1 << 20)]
    {
        let lines = bytes / 64;
        let m = harness::bench(&format!("hierarchy/{label}"), || {
            let mut core = CoreHierarchy::new(0, &config);
            let mut llc = SharedLlc::new(&config, PolicyKind::Rlr.build(&config.llc, None));
            for i in 0..LEVEL_ACCESSES {
                let addr = (i % lines) * 64;
                black_box(core.data_access(0x400 + (i % 32) * 4, addr, i % 13 == 0, &mut llc));
            }
        });
        rows.push(Throughput { measurement: m, accesses: LEVEL_ACCESSES });
    }

    // Full three-level replay of the captured 429.mcf demand stream:
    // per-access dispatch vs the staged L1/L2 batch path (both are wall-
    // checked bit-identical by `experiments/tests/hierarchy_batch.rs`).
    let requests = demand_requests(&trace);
    let demand = requests.len() as u64;
    println!("hierarchy_replay (429.mcf demand stream, {demand} requests):");
    let mut replay_rows = [0.0f64; 2];
    for (slot, (label, mode)) in [
        ("per_access", HierarchyReplayMode::PerAccess),
        ("batched", HierarchyReplayMode::Batched),
    ]
    .into_iter()
    .enumerate()
    {
        let m = harness::bench(&format!("hierarchy_replay/{label}"), || {
            let mut core = CoreHierarchy::new(0, &config);
            let mut llc = SharedLlc::new(&config, PolicyKind::Rlr.build(&config.llc, None));
            black_box(replay_hierarchy(&mut core, &mut llc, &requests, mode).len())
        });
        replay_rows[slot] = m.median_ns as f64;
        rows.push(Throughput { measurement: m, accesses: demand });
    }
    println!(
        "    batched replay is {:.2}x the per-access path",
        replay_rows[0] / replay_rows[1].max(1.0)
    );

    // Timing modes over the full system: the analytic MLP formula vs the
    // discrete-event core with DRAM bank queueing. Same functional stream
    // in both (wall-checked by `experiments/tests/timing_differential.rs`);
    // the row pair tracks how much simulated-time fidelity costs.
    const TIMING_INSTRUCTIONS: u64 = 300_000;
    println!("timing modes (full system, 429.mcf, {TIMING_INSTRUCTIONS} instructions):");
    let mut timing_rows = [0.0f64; 2];
    for (slot, mode) in [TimingMode::Analytic, TimingMode::Event].into_iter().enumerate() {
        let timed = config.with_timing(mode);
        let m = harness::bench(&format!("timing/{mode}"), || {
            let mut system =
                SingleCoreSystem::new(&timed, PolicyKind::Rlr.build(&timed.llc, None));
            let stream = workloads::spec2006("429.mcf").expect("known benchmark").stream();
            black_box(system.run(stream, TIMING_INSTRUCTIONS).cycles)
        });
        timing_rows[slot] = m.min_ns as f64;
        rows.push(Throughput { measurement: m, accesses: TIMING_INSTRUCTIONS });
    }
    println!(
        "    event core costs {:.2}x the analytic formula",
        timing_rows[1] / timing_rows[0].max(1.0)
    );

    // The victim scan in isolation: the RLR per-way key computation over
    // LLC-shaped sets, scalar reference vs lane-parallel backend. Both
    // backends stay compiled in every build, so the bench always compares
    // them directly regardless of the `scalar-scan` feature.
    let (params, age_stamps, rec_stamps, metas) = scan_fixture(&config);
    let sets = config.llc.sets as usize;
    let ways = usize::from(config.llc.ways);
    let mut scan_rows = [0.0f64; 2];
    for (slot, label) in ["scalar", "simd"].into_iter().enumerate() {
        let m = harness::bench(&format!("victim_scan/{label}"), || {
            let mut acc = 0u64;
            for set in 0..sets {
                let range = set * ways..(set + 1) * ways;
                let scan_ways = ScanWays {
                    age_stamps: &age_stamps[range.clone()],
                    rec_stamps: &rec_stamps[range.clone()],
                    metas: &metas[range],
                    cores: &[],
                    core_rank: &[],
                };
                let outcome = if slot == 0 {
                    scan::scan_scalar(&params, &scan_ways)
                } else {
                    scan::scan_lanes(&params, &scan_ways)
                };
                acc ^= outcome.best_key;
            }
            black_box(acc)
        });
        scan_rows[slot] = m.min_ns as f64;
        rows.push(Throughput { measurement: m, accesses: sets as u64 });
    }
    println!(
        "victim_scan: lane backend is {:.2}x the scalar reference \
         ({sets} sets x {ways} ways per call)",
        scan_rows[0] / scan_rows[1].max(1.0)
    );

    // The object-cache serving tier: replay a Zipf + flash-crowd object
    // trace (variable sizes, byte budget, TTLs) through the roster's two
    // poles — plain LRU and the derived admission+eviction rule, whose
    // extra work (frequency sketch, rank recomputation) is what this row
    // prices. Functional results are wall-checked by the objcache
    // differential suite; this tracks requests/sec only.
    let obj_traffic = workloads::ObjectTraffic {
        catalog: 100_000,
        flash_every: 10_000,
        flash_len: 2_000,
        ..workloads::ObjectTraffic::internet_default()
    };
    let obj_trace: Vec<workloads::ObjectRequest> = obj_traffic.stream().take(60_000).collect();
    let obj_cfg = objcache::ObjCacheConfig::with_capacity_mib(64);
    println!("objcache_replay ({} object requests):", obj_trace.len());
    let mut obj_ns = [0.0f64; 2];
    for (slot, policy) in
        [objcache::ObjPolicyKind::Lru, objcache::ObjPolicyKind::parse("rlr").expect("pinned")]
            .into_iter()
            .enumerate()
    {
        let m = harness::bench(&format!("objcache/replay/{}", policy.name()), || {
            black_box(objcache::replay(obj_cfg, policy, obj_trace.iter().copied()).hit_bytes)
        });
        obj_ns[slot] = m.median_ns as f64;
        rows.push(Throughput { measurement: m, accesses: obj_trace.len() as u64 });
    }
    println!(
        "    derived rule costs {:.2}x plain LRU per request",
        obj_ns[1] / obj_ns[0].max(1.0)
    );

    // The multi-tenant serving tier: the pinned three-class mix (synthetic
    // sources, per-tenant address spaces) through the multi-tenant LLC in
    // each isolation mode, against the bare packed cache + RLR policy on
    // the same stream. Prices the tenancy layer — tenant policy, owner
    // mirror, QoS + DRAM-latency accounting — per isolation mode.
    const TENANT_ACCESSES: usize = 200_000;
    let mix = workloads::TenantMix::default_three_class();
    let streams: Vec<_> = mix
        .tenants
        .iter()
        .map(|t| t.source.synthetic_stream().expect("the default mix is synthetic"))
        .collect();
    let tenant_rows: Vec<(u8, u64, u64)> =
        workloads::WeightedInterleave::new(streams, &mix.rates(), mix.seed)
            .take(TENANT_ACCESSES)
            .map(|(t, a)| {
                let salt = (t as u64 + 1) << 40;
                (t as u8, a.pc ^ salt, (a.line ^ salt) << 6)
            })
            .collect();
    let tenant_llc = cache_sim::CacheConfig { sets: 256, ways: 8, latency: 26 };
    let mut tenant_cfg = config.clone();
    tenant_cfg.llc = tenant_llc;
    println!("tenancy replay (3-class mix, {TENANT_ACCESSES} accesses):");
    let single = harness::bench("tenancy/single_tenant", || {
        let mut cache =
            SetAssocCache::new("packed", tenant_llc, PolicyKind::Rlr.build(&tenant_llc, None));
        let mut hits = 0u64;
        for (seq, &(_, pc, addr)) in tenant_rows.iter().enumerate() {
            let access = Access {
                pc,
                addr,
                kind: cache_sim::AccessKind::Load,
                core: 0,
                seq: seq as u64,
            };
            hits += u64::from(cache.access(&access).hit);
        }
        black_box(hits)
    });
    let single_ns = single.median_ns.max(1) as f64;
    rows.push(Throughput { measurement: single, accesses: TENANT_ACCESSES as u64 });
    for (label, mode) in [
        ("shared", tenancy::IsolationMode::Shared),
        (
            "way_partition",
            tenancy::IsolationMode::WayPartition(tenancy::partition_by_weight(
                tenant_llc.ways,
                &mix.weights(),
            )),
        ),
        ("learned_priority", tenancy::IsolationMode::LearnedPriority(vec![4, 1, 0])),
    ] {
        let m = harness::bench(&format!("tenancy/replay/{label}"), || {
            let mut sys = tenancy::MultiTenantLlc::new(&tenant_cfg, 3, mode.clone());
            for &(t, pc, addr) in &tenant_rows {
                sys.access(t, pc, addr, cache_sim::AccessKind::Load);
            }
            black_box(sys.qos_all().iter().map(|q| q.hits).sum::<u64>())
        });
        println!(
            "    {label}: {:.2}x the bare packed path",
            m.median_ns as f64 / single_ns
        );
        rows.push(Throughput { measurement: m, accesses: TENANT_ACCESSES as u64 });
    }

    harness::write_throughput_json("hotpath", &rows);
}

/// Deterministic per-way scan inputs shaped like a warm LLC: epoch-unit
/// ages a few epochs deep, recency stamps spread over the last few
/// thousand accesses, mixed access types and hit counts.
fn scan_fixture(config: &SystemConfig) -> (ScanParams, Vec<u64>, Vec<u64>, Vec<LineMeta>) {
    let lines = config.llc.sets as usize * usize::from(config.llc.ways);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let now = 1 << 20;
    let clock = 1 << 24;
    let age_stamps: Vec<u64> = (0..lines).map(|_| now - (next() % 8)).collect();
    let rec_stamps: Vec<u64> = (0..lines).map(|_| clock - (next() % 4096)).collect();
    let metas: Vec<LineMeta> = (0..lines)
        .map(|_| {
            let bits = next();
            let mut meta = LineMeta::filled(bits & 0x40 != 0, bits & 0x80 != 0);
            meta.set_hit_count((bits & 0x3) as u8);
            meta
        })
        .collect();
    let params = ScanParams {
        now,
        clock,
        rd: 4,
        max_age: 3,
        age_weight: 8,
        use_type: true,
        use_hit: true,
        exact_recency: false,
    };
    (params, age_stamps, rec_stamps, metas)
}
