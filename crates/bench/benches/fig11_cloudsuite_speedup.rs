//! Regenerates Fig. 11: CloudSuite IPC speedups over LRU.
fn main() {
    let scale = rlr_bench::start("fig11");
    rlr_bench::timed("fig11", || {
        experiments::figures::fig11(scale).emit();
    });
}
