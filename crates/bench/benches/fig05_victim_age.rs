//! Regenerates Fig. 5: average victim age per access type.
fn main() {
    let scale = rlr_bench::start("fig05");
    rlr_bench::timed("fig05", || {
        experiments::figures::fig5(scale).emit();
    });
}
