//! Regenerates Fig. 6: victims by hit count at eviction.
fn main() {
    let scale = rlr_bench::start("fig06");
    rlr_bench::timed("fig06", || {
        experiments::figures::fig6(scale).emit();
    });
}
