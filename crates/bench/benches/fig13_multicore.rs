//! Regenerates Fig. 13: 4-core mix speedups over LRU.
fn main() {
    let scale = rlr_bench::start("fig13");
    rlr_bench::timed("fig13", || {
        experiments::figures::fig13(scale).emit();
    });
}
