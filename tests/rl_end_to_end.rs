//! End-to-end RL pipeline test: capture → train → evaluate → interpret,
//! on a real (scaled-down) workload.

use cache_sim::{CacheConfig, SingleCoreSystem, SystemConfig, TrueLru};
use rl::{analysis, AgentConfig, FeatureSet, LlcModel, Trainer};
use workloads::{Recipe, Workload};

/// Captures a short LLC trace from the full hierarchy.
fn capture(workload: &Workload, instructions: u64) -> cache_sim::LlcTrace {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
    system.llc_mut().enable_capture();
    let _ = system.run(workload.stream(), instructions);
    system.llc_mut().take_capture().expect("capture enabled")
}

#[test]
fn agent_learns_a_mixed_workload_end_to_end() {
    // Hot Zipf set + a scan bigger than the LLC: the agent must learn to
    // keep the hot lines while aging out scan lines. (A pure thrash
    // pattern would be a bad test: constant-way eviction — which an
    // untrained network produces — is already optimal there.)
    // Footprints must exceed the 256 KB L2, or the LLC never sees reuse.
    let wl = Workload::new(
        "e2e-mix",
        Recipe::Mix(vec![
            (2, Recipe::Zipf { bytes: 1 << 20, skew: 1.2, store_ratio: 0.1 }),
            (1, Recipe::Cyclic { bytes: 4 << 20, stride: 64, store_ratio: 0.0 }),
        ]),
    )
    .with_local(0.2);
    let llc = CacheConfig { sets: 64, ways: 16, latency: 26 }; // 64 KB
    let mut trace = capture(&wl, 300_000);
    trace.truncate(40_000);
    assert!(trace.len() > 2_000, "trace too small: {}", trace.len());

    let config = AgentConfig { hidden: 24, seed: 5, features: FeatureSet::full(), ..AgentConfig::default() };
    let mut trainer = Trainer::new(config, &llc);
    // Baseline: a seeded random chooser (no learning at all).
    let mut random_model = LlcModel::new(&llc, &trace);
    let mut state = 0x1234_5678u64;
    let ways = llc.ways as u64;
    let random = random_model.run(&trace, &mut |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % ways) as u16
    });
    for _ in 0..2 {
        let _ = trainer.train_epoch(&trace, &llc);
    }
    let trained = trainer.evaluate(&trace, &llc);
    let mut belady = LlcModel::new(&llc, &trace);
    let optimal = belady.run_belady(&trace);

    assert!(
        trained.hits > random.hits,
        "training must beat random eviction: {} -> {}",
        random.hits,
        trained.hits
    );
    assert!(optimal.hits >= trained.hits, "nothing beats Belady");

    // Interpretation must produce a full heat map.
    let heat = analysis::weight_heatmap(trainer.agent());
    assert_eq!(heat.len(), rl::NUM_FEATURES);
}

#[test]
fn trained_network_round_trips_through_disk() {
    let llc = CacheConfig { sets: 16, ways: 4, latency: 26 };
    let wl = Workload::new("rt", Recipe::Zipf { bytes: 64 << 10, skew: 0.8, store_ratio: 0.2 });
    let trace = capture(&wl, 100_000);
    let config = AgentConfig { hidden: 16, seed: 2, ..AgentConfig::default() };
    let mut trainer = Trainer::new(config, &llc);
    let _ = trainer.train_epoch(&trace, &llc);

    let mut buf = Vec::new();
    trainer.agent().net().save(&mut buf).expect("in-memory save");
    let net = rl::Mlp::load(buf.as_slice()).expect("load");
    let restored = rl::Agent::from_net(config, &llc, net);

    // Greedy decisions must be identical before and after the round trip.
    let mut model_a = LlcModel::new(&llc, &trace);
    let mut model_b = LlcModel::new(&llc, &trace);
    let a = model_a.run(&trace, &mut |v| trainer.agent().decide_greedy(v));
    let b = model_b.run(&trace, &mut |v| restored.decide_greedy(v));
    assert_eq!(a, b);
}

#[test]
fn hill_climbing_finds_reuse_features_on_thrash() {
    // On a pure cyclic thrash pattern, age/recency-style features are the
    // signal; hill climbing should pick features and improve the score.
    let wl = Workload::new(
        "hc",
        Recipe::Cyclic { bytes: 48 << 10, stride: 64, store_ratio: 0.0 },
    )
    .with_local(0.0);
    let llc = CacheConfig { sets: 16, ways: 16, latency: 26 }; // 16 KB
    let trace = capture(&wl, 80_000);
    let rounds = analysis::hill_climb(&[("hc", &trace)], &llc, 2, 1, 3);
    assert!(!rounds.is_empty(), "at least one feature must help");
    assert!(rounds[0].score > 0.0);
}
