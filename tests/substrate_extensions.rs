//! Integration tests for the substrate extensions: DRAM row buffers,
//! KPC-P prefetching, and trace record/replay.

use cache_sim::{SingleCoreSystem, SystemConfig, TrueLru};
use workloads::{Recipe, RecordedTrace, Workload};

#[test]
fn streams_enjoy_dram_row_locality_chases_do_not() {
    let config = SystemConfig::paper_single_core();
    let run = |wl: &Workload| {
        let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
        system.run(wl.stream(), 400_000)
    };
    let stream = run(
        &Workload::new("s", Recipe::Cyclic { bytes: 32 << 20, stride: 64, store_ratio: 0.0 })
            .with_local(0.0),
    );
    let chase = run(&Workload::new("c", Recipe::Chase { bytes: 64 << 20 }).with_local(0.0));
    assert!(
        stream.dram_row_hit_rate() > chase.dram_row_hit_rate() + 0.2,
        "sequential memory traffic must hit open rows far more: {:.2} vs {:.2}",
        stream.dram_row_hit_rate(),
        chase.dram_row_hit_rate()
    );
}

#[test]
fn row_locality_translates_into_ipc() {
    // Same instruction mix, same miss count class — the streaming version
    // must be faster than the row-jumping one because of DRAM latency alone
    // (prefetchers disabled to isolate the memory system).
    let config = SystemConfig::paper_single_core().without_prefetchers();
    let run = |wl: &Workload| {
        let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
        system.run(wl.stream(), 300_000)
    };
    let sequential = run(
        &Workload::new("seq", Recipe::Cyclic { bytes: 64 << 20, stride: 64, store_ratio: 0.0 })
            .with_local(0.0)
            .with_compute(2, 2),
    );
    // Stride of a full DRAM row (8 KB) jumps rows every access.
    let jumping = run(
        &Workload::new("jump", Recipe::Cyclic { bytes: 64 << 20, stride: 8192, store_ratio: 0.0 })
            .with_local(0.0)
            .with_compute(2, 2),
    );
    assert!(
        sequential.ipc() > jumping.ipc(),
        "row hits must be cheaper: {:.3} vs {:.3}",
        sequential.ipc(),
        jumping.ipc()
    );
}

#[test]
fn kpc_prefetcher_runs_and_limits_l2_fills() {
    use cache_sim::AccessKind;
    let ip = SystemConfig::paper_single_core();
    let kpc = SystemConfig::paper_single_core().with_kpc_prefetcher();
    let wl = Workload::new("mix", Recipe::Mix(vec![
        (1, Recipe::Cyclic { bytes: 16 << 20, stride: 64, store_ratio: 0.1 }),
        (1, Recipe::Zipf { bytes: 8 << 20, skew: 0.9, store_ratio: 0.2 }),
    ]))
    .with_local(0.5);
    let run = |config: &SystemConfig| {
        let mut system = SingleCoreSystem::new(config, Box::new(TrueLru::new(&config.llc)));
        system.run(wl.stream(), 500_000)
    };
    let with_ip = run(&ip);
    let with_kpc = run(&kpc);
    // Both prefetch into the LLC.
    assert!(with_ip.llc.by_kind[AccessKind::Prefetch.index()].accesses > 0);
    assert!(with_kpc.llc.by_kind[AccessKind::Prefetch.index()].accesses > 0);
    // KPC-P's low-confidence prefetches skip L2, so L2 sees fewer prefetch
    // fills relative to its LLC prefetch issue volume.
    let ip_l2_pf = with_ip.l2.by_kind[AccessKind::Prefetch.index()].accesses as f64
        / with_ip.llc.by_kind[AccessKind::Prefetch.index()].accesses.max(1) as f64;
    let kpc_l2_pf = with_kpc.l2.by_kind[AccessKind::Prefetch.index()].accesses as f64
        / with_kpc.llc.by_kind[AccessKind::Prefetch.index()].accesses.max(1) as f64;
    assert!(
        kpc_l2_pf <= ip_l2_pf + 0.5,
        "KPC-P must not flood L2 more than IP-stride: {kpc_l2_pf:.2} vs {ip_l2_pf:.2}"
    );
}

#[test]
fn recorded_traces_drive_the_simulator_identically() {
    let config = SystemConfig::paper_single_core();
    let wl = Workload::new("rec", Recipe::Zipf { bytes: 4 << 20, skew: 1.0, store_ratio: 0.3 });
    let recorded = RecordedTrace::record(&wl, 200_000);

    let mut live_system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
    let live = live_system.run(wl.stream(), 100_000);

    let mut replay_system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
    let replayed = replay_system.run(recorded.iter(), 100_000);

    assert_eq!(live, replayed, "a recorded stream must replay bit-identically");
}
