//! Property-based invariants of the simulation substrate, on the in-tree
//! `simrng::prop` harness.

use cache_sim::{
    Access, AccessKind, CacheConfig, SetAssocCache, SingleCoreSystem, SystemConfig, TrueLru,
};
use simrng::prop::{check, Config};
use simrng::{prop_assert, prop_assert_eq, Rng};
use workloads::{Recipe, Workload};

/// A cache never reports more hits than accesses, never contains
/// duplicate lines in a set, and hit/miss accounting is consistent.
#[test]
fn cache_accounting_is_consistent() {
    check(
        "cache_accounting_is_consistent",
        Config::with_cases(24),
        |rng| {
            let n = rng.gen_range(1..400usize);
            (0..n).map(|_| rng.gen_range(0..4096u64)).collect::<Vec<_>>()
        },
        |addrs| {
            let cfg = CacheConfig { sets: 8, ways: 4, latency: 1 };
            let mut cache = SetAssocCache::new("t", cfg, Box::new(TrueLru::new(&cfg)));
            for (i, &a) in addrs.iter().enumerate() {
                let kind = match i % 5 {
                    0 => AccessKind::Rfo,
                    1 => AccessKind::Prefetch,
                    2 => AccessKind::Writeback,
                    _ => AccessKind::Load,
                };
                let access = Access { pc: a * 8, addr: a * 64, kind, core: 0, seq: i as u64 };
                let out = cache.access(&access);
                // After any access, the line must be resident (no bypass here).
                prop_assert!(cache.contains(a * 64));
                // Hits never evict.
                if out.hit {
                    prop_assert!(out.evicted.is_none());
                }
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.accesses(), addrs.len() as u64);
            prop_assert!(stats.hits() <= stats.accesses());
            prop_assert!(stats.writebacks_out <= stats.evictions);
            Ok(())
        },
    );
}

/// Rerunning a workload yields identical statistics (determinism), and
/// instruction targets are honoured.
#[test]
fn simulation_is_deterministic() {
    check(
        "simulation_is_deterministic",
        Config::with_cases(24),
        |rng| (rng.gen_range(0..1000u64), rng.gen_range(64..4096u64)),
        |&(seed, footprint_kb)| {
            let wl = Workload::new(
                "prop",
                Recipe::Zipf { bytes: footprint_kb << 10, skew: 0.9, store_ratio: 0.3 },
            )
            .with_seed(seed);
            let config = SystemConfig::paper_single_core();
            let run = || {
                let mut system =
                    SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
                system.run(wl.stream(), 60_000)
            };
            let a = run();
            let b = run();
            prop_assert_eq!(&a, &b);
            prop_assert!(a.instructions >= 60_000);
            Ok(())
        },
    );
}

/// Demand accesses filtered by L1/L2 can never exceed the accesses
/// issued by the core, and every LLC demand miss implies a memory read.
#[test]
fn hierarchy_filters_monotonically() {
    check(
        "hierarchy_filters_monotonically",
        Config::with_cases(24),
        |rng| rng.gen_range(0..1000u64),
        |&seed| {
            let wl = Workload::new(
                "prop2",
                Recipe::Mix(vec![
                    (3, Recipe::Chase { bytes: 4 << 20 }),
                    (1, Recipe::Cyclic { bytes: 1 << 20, stride: 64, store_ratio: 0.4 }),
                ]),
            )
            .with_seed(seed);
            let config = SystemConfig::paper_single_core();
            let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
            let stats = system.run(wl.stream(), 80_000);
            prop_assert!(
                stats.l2.demand_accesses() <= stats.l1d.demand_misses() + stats.l1d.demand_accesses()
            );
            prop_assert!(stats.llc.demand_accesses() <= stats.l2.accesses());
            prop_assert!(stats.memory_reads >= stats.llc.demand_misses());
            // IPC is bounded by the issue width.
            prop_assert!(stats.ipc() <= f64::from(config.issue_width) + 1e-9);
            Ok(())
        },
    );
}

#[test]
fn prefetch_traffic_reaches_the_llc_for_streams() {
    let wl = Workload::new(
        "stream",
        Recipe::Cyclic { bytes: 16 << 20, stride: 64, store_ratio: 0.0 },
    )
    .with_local(0.0);
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
    let stats = system.run(wl.stream(), 300_000);
    let pf = stats.llc.by_kind[AccessKind::Prefetch.index()].accesses;
    assert!(pf > 0, "a sequential stream must generate LLC prefetch traffic");
    let demand = stats.llc.demand_accesses();
    assert!(demand > 0, "dropped/late prefetches must leave demand traffic");
}
