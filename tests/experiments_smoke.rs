//! Smoke tests of the experiment harness: tables are well-formed and the
//! cheap experiments produce sane values.

use experiments::{geomean_speedup_pct, tables, PolicyKind, Scale};

#[test]
fn table1_contains_every_headline_policy() {
    let table = tables::table1();
    let rendered = table.render();
    for name in ["LRU", "DRRIP", "KPC-R", "SHiP", "SHiP++", "Hawkeye", "RLR", "Glider"] {
        assert!(rendered.contains(name), "Table I must list {name}");
    }
    // The paper's headline: RLR costs 16.75 KB.
    assert!(rendered.contains("16.75"));
    // And it must be marked as not using the PC.
    let rlr_row = table
        .rows()
        .iter()
        .find(|r| r[0] == "RLR")
        .expect("RLR row exists");
    assert_eq!(rlr_row[1], "no");
}

#[test]
fn single_core_roster_matches_figure_10() {
    let names: Vec<&str> = PolicyKind::SINGLE_CORE.iter().map(|p| p.name()).collect();
    assert_eq!(names, ["DRRIP", "KPC-R", "SHiP", "RLR", "RLR(unopt)", "Hawkeye", "SHiP++"]);
}

#[test]
fn scales_parse_from_env_convention() {
    // Not setting the variable defaults to Small; explicit values resolve.
    assert_eq!(Scale::from_env(), Scale::Small);
}

#[test]
fn geomean_matches_hand_computation() {
    // 10% and 21% speedups: geomean = sqrt(1.1 * 1.21) - 1 = 15.37%.
    let g = geomean_speedup_pct([10.0, 21.0]);
    assert!((g - 15.3687).abs() < 1e-3, "geomean = {g}");
}

#[test]
fn csv_artifacts_are_written() {
    let table = tables::table1();
    let dir = std::env::temp_dir().join("rlr_smoke_csv");
    let path = table.write_csv(&dir).expect("csv written");
    let content = std::fs::read_to_string(path).expect("readable");
    assert!(content.lines().count() > 10);
    assert!(content.starts_with("policy,"));
}
