//! Cross-crate ranking invariants: the qualitative relationships the paper
//! depends on must hold in this reproduction.

use cache_sim::{SingleCoreSystem, SystemConfig};
use experiments::PolicyKind;
use policies::Belady;
use workloads::{Recipe, Workload};

/// Small instruction budgets keep these integration tests debug-friendly.
const WARMUP: u64 = 200_000;
const MEASURE: u64 = 800_000;

fn run(workload: &Workload, kind: PolicyKind) -> cache_sim::RunStats {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, kind.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, WARMUP);
    system.run(stream, MEASURE)
}

/// A working set slightly larger than the LLC, cycled repeatedly: the
/// canonical thrash pattern.
fn thrash_workload() -> Workload {
    Workload::new(
        "thrash",
        Recipe::Cyclic { bytes: 3 << 20, stride: 64, store_ratio: 0.1 },
    )
    .with_compute(2, 4)
    .with_local(0.3)
}

#[test]
fn thrash_resistant_policies_beat_lru_on_scans() {
    let wl = thrash_workload();
    let lru = run(&wl, PolicyKind::Lru);
    for kind in [PolicyKind::Drrip, PolicyKind::Rlr, PolicyKind::RlrUnopt] {
        let stats = run(&wl, kind);
        assert!(
            stats.llc.demand_hit_rate() > lru.llc.demand_hit_rate(),
            "{} must out-hit LRU on a thrashing scan: {:.3} vs {:.3}",
            kind.name(),
            stats.llc.demand_hit_rate(),
            lru.llc.demand_hit_rate()
        );
    }
}

#[test]
fn belady_dominates_every_online_policy_on_the_captured_stream() {
    // Capture the LLC stream once (it is policy-invariant), replay with
    // Belady, and require at least as many LLC hits as every online policy.
    let wl = thrash_workload();
    let config = SystemConfig::paper_single_core();

    let mut capture = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = wl.stream();
    capture.llc_mut().enable_capture();
    capture.warm_up(&mut stream, WARMUP);
    let _ = capture.run(stream, MEASURE);
    let trace = capture.llc_mut().take_capture().expect("capture enabled");

    let mut belady_sys =
        SingleCoreSystem::new(&config, Box::new(Belady::from_trace(&trace, &config.llc)));
    let mut stream = wl.stream();
    belady_sys.warm_up(&mut stream, WARMUP);
    let opt = belady_sys.run(stream, MEASURE);

    for kind in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::ShipPp,
        PolicyKind::Hawkeye,
        PolicyKind::Pdp,
        PolicyKind::Eva,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
    ] {
        let stats = run(&wl, kind);
        assert!(
            opt.llc.hits() >= stats.llc.hits(),
            "Belady ({}) must dominate {} ({})",
            opt.llc.hits(),
            kind.name(),
            stats.llc.hits()
        );
    }
}

#[test]
fn llc_stream_is_invariant_across_llc_policies() {
    // The key property that makes the offline oracle exact.
    let wl = thrash_workload();
    let config = SystemConfig::paper_single_core();
    let mut traces = Vec::new();
    for kind in [PolicyKind::Lru, PolicyKind::Rlr, PolicyKind::Hawkeye] {
        let mut system = SingleCoreSystem::new(&config, kind.build(&config.llc, None));
        system.llc_mut().enable_capture();
        let _ = system.run(wl.stream(), 300_000);
        traces.push(system.llc_mut().take_capture().expect("capture enabled"));
    }
    assert_eq!(traces[0], traces[1], "LLC stream must not depend on the LLC policy");
    assert_eq!(traces[0], traces[2]);
}

#[test]
fn rlr_multicore_extension_matches_paper_direction_on_asymmetric_mix() {
    use cache_sim::MultiCoreSystem;
    use workloads::TraceEntry;

    // Two hit-rich cores + two streaming cores: core-priority should not
    // hurt, and the system must run to completion with sane stats.
    let config = SystemConfig::paper_quad_core();
    let names = ["416.gamess", "450.soplex", "470.lbm", "429.mcf"];
    let make_streams = || -> Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> {
        names
            .iter()
            .map(|n| {
                Box::new(workloads::spec2006(n).expect("known").stream())
                    as Box<dyn Iterator<Item = TraceEntry> + Send>
            })
            .collect()
    };
    let mut lru = MultiCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None), make_streams());
    let lru_stats = lru.run(100_000, 400_000);
    let mut rlr = MultiCoreSystem::new(
        &config,
        PolicyKind::RlrMulticore.build(&config.llc, None),
        make_streams(),
    );
    let rlr_stats = rlr.run(100_000, 400_000);
    for (l, r) in lru_stats.iter().zip(&rlr_stats) {
        assert!(l.cycles > 0 && r.cycles > 0);
    }
    // Aggregate LLC demand hits should not collapse under RLR-MC.
    assert!(
        rlr_stats[0].llc.demand_hits() * 10 >= lru_stats[0].llc.demand_hits() * 8,
        "RLR-MC demand hits ({}) collapsed vs LRU ({})",
        rlr_stats[0].llc.demand_hits(),
        lru_stats[0].llc.demand_hits()
    );
}

/// Exact LLC demand-hit counters captured on the pre-rewrite (AoS,
/// `Box<dyn>`-dispatched) simulator for the paper's 8 training benchmarks,
/// LRU vs RLR, with the harness of [`run`] (200k warm-up, 800k measured).
///
/// The hot-path rewrite (static dispatch + packed metadata) must not move
/// a single counter: any drift here is a semantic change, not a speedup.
/// If a deliberate behavioural change ever invalidates these numbers,
/// recapture them with the `ReferenceCache` oracle and say why in the
/// commit.
const GOLDEN_DEMAND_HITS: [(&str, [(u64, u64); 2]); 8] = [
    ("459.GemsFDTD", [(246, 17861), (221, 17861)]),
    ("403.gcc", [(1124, 9897), (1124, 9897)]),
    ("429.mcf", [(1624, 31210), (1729, 31210)]),
    ("450.soplex", [(8489, 25611), (8167, 25611)]),
    ("470.lbm", [(2684, 27364), (1542, 27364)]),
    ("437.leslie3d", [(328, 16055), (316, 16055)]),
    ("471.omnetpp", [(1243, 23337), (1226, 23337)]),
    ("483.xalancbmk", [(1733, 21261), (1647, 21261)]),
];

#[test]
fn golden_training_set_counters_survive_the_hot_path_rewrite() {
    assert_eq!(
        GOLDEN_DEMAND_HITS.map(|(name, _)| name),
        workloads::TRAINING_SET,
        "training set changed — recapture the golden counters"
    );
    for (name, golden) in GOLDEN_DEMAND_HITS {
        let wl = workloads::spec2006(name).expect("training benchmark");
        for (kind, (hits, accesses)) in [PolicyKind::Lru, PolicyKind::Rlr].into_iter().zip(golden)
        {
            let stats = run(&wl, kind);
            assert_eq!(
                (stats.llc.demand_hits(), stats.llc.demand_accesses()),
                (hits, accesses),
                "{name}/{}: LLC demand counters drifted from the golden capture",
                kind.name()
            );
        }
    }
}
