#!/usr/bin/env sh
# Hermetic CI gate: the whole workspace must build, test, and compile its
# bench targets with zero network/registry access (every dependency is
# in-tree). Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> equivalence wall, forced-scalar scan build"
# The workspace run above exercised the differential walls in the default
# (lane-vectorized) build; re-run them with the victim scans forced onto
# the scalar fallback so BOTH backends stay oracle-checked on every CI
# pass, not just the one the build happened to select.
cargo test -q --offline -p rlr --features scalar-scan \
    --test seed_equivalence --test simd_scan_equivalence
cargo test -q --offline -p cache-sim --features rlr/scalar-scan \
    --test dispatch_equivalence
cargo test -q --offline -p experiments --features rlr/scalar-scan \
    --test hierarchy_batch

echo "==> tenancy partition wall (lane + forced-scalar scan builds)"
# The waymask property wall: masked scalar/lane/dispatch scans agree and
# never pick a victim outside the mask, and WayPartition occupancy never
# exceeds the allocation. Run in both scan builds so the masked kernels
# stay oracle-checked on whichever backend CI selects.
cargo test -q --offline -p tenancy --test partition_wall
cargo test -q --offline -p tenancy --features scalar-scan --test partition_wall

echo "==> timing wall (analytic + event)"
# Both suites drive the analytic AND the event timing model internally:
# the property suite (IPC bound, monotone clock, MSHR occupancy, chain
# serialization, drained finish) and the golden-fixture differential wall
# (event determinism, functional counters byte-identical across modes,
# policy ranking preserved, pinned event cycle counts). They already ran
# in the workspace pass; running them by name means a timing regression
# is reported by the gate that owns it.
cargo test -q --offline -p cache-sim --test timing_invariants
cargo test -q --offline -p experiments --test timing_differential

echo "==> cargo bench --no-run --offline"
cargo bench --no-run --offline --workspace

echo "==> bench smoke (hot-path speedup gate)"
# Replays a short captured trace through the frozen seed simulator and the
# packed hot path; fails if the in-process speedup ratio drops >20% below
# crates/bench/ci_baseline.json (ratios cancel machine speed, so this is
# stable across hosts where absolute accesses/sec are not).
cargo bench --offline -p rlr-bench --bench ci_smoke

echo "==> fault-injection suite"
cargo test -q --offline -p experiments --test resilience
cargo test -q --offline -p rl --test resume

echo "==> crash-consistency wall"
# Torn/flip/enospc/short-read I/O faults against the checkpoint and
# container codecs: a write torn at every byte offset must never expose a
# partial artifact, and salvage must recover every intact block of a
# damaged RLT1 container.
cargo test -q --offline -p experiments --test crash_wall
cargo test -q --offline -p trace-io --test salvage

echo "==> CLI resume smoke test"
# A Small-scale sweep interrupted by an injected crash, then re-run
# against the same checkpoint directory, must print exactly what an
# uninterrupted sweep prints — and the interrupted run must mark the
# crashed cell as failed instead of aborting.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
RLR="./target/release/rlr"
COMPARE="429.mcf --policies FIFO --instructions 2000000 --warmup 500000 --jobs 2"
RLR_RESULTS_DIR="$SMOKE_DIR/clean" "$RLR" compare $COMPARE \
    > "$SMOKE_DIR/clean.txt" 2>/dev/null
RLR_RESULTS_DIR="$SMOKE_DIR/resume" RLR_FAIL_PLAN="panic:1:*" RLR_RETRIES=0 \
    "$RLR" compare $COMPARE > "$SMOKE_DIR/interrupted.txt" 2>/dev/null
grep -q "failed" "$SMOKE_DIR/interrupted.txt" || {
    echo "ci.sh: injected crash was not reported as a failed cell" >&2; exit 1;
}
RLR_RESULTS_DIR="$SMOKE_DIR/resume" "$RLR" compare $COMPARE \
    > "$SMOKE_DIR/resumed.txt" 2>/dev/null
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/resumed.txt" || {
    echo "ci.sh: resumed sweep diverged from the uninterrupted run" >&2; exit 1;
}

echo "==> I/O-fault CLI smoke test"
# A torn checkpoint store mid-sweep is benign: the sweep's stdout matches
# the clean run exactly (the cell is recomputed, not read back), and the
# resumed run against the surviving checkpoints still matches.
RLR_RESULTS_DIR="$SMOKE_DIR/torn" RLR_FAIL_PLAN="torn:40" \
    "$RLR" compare $COMPARE > "$SMOKE_DIR/torn.txt" 2>/dev/null
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/torn.txt" || {
    echo "ci.sh: a torn checkpoint store changed the sweep's output" >&2; exit 1;
}
RLR_RESULTS_DIR="$SMOKE_DIR/torn" "$RLR" compare $COMPARE \
    > "$SMOKE_DIR/torn_resumed.txt" 2>/dev/null
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/torn_resumed.txt" || {
    echo "ci.sh: resume after a torn store diverged from the clean run" >&2; exit 1;
}
# A bit flip injected into a container capture must fail verification,
# and --repair must salvage the intact blocks into a container that then
# verifies (the damaged original is kept as evidence).
RLR_FAIL_PLAN="flip:100" "$RLR" trace capture 429.mcf \
    --out "$SMOKE_DIR/flipped.rlt" --records 4096 --block 256 > /dev/null 2>&1
if "$RLR" trace verify "$SMOKE_DIR/flipped.rlt" > /dev/null 2>&1; then
    echo "ci.sh: flipped container unexpectedly passed verification" >&2; exit 1;
fi
"$RLR" trace verify "$SMOKE_DIR/flipped.rlt" --repair > /dev/null || {
    echo "ci.sh: salvage of the flipped container failed" >&2; exit 1;
}
"$RLR" trace verify "$SMOKE_DIR/flipped.rlt" > /dev/null || {
    echo "ci.sh: repaired container failed verification" >&2; exit 1;
}
test -f "$SMOKE_DIR/flipped.rlt.damaged" || {
    echo "ci.sh: in-place repair did not keep the damaged original" >&2; exit 1;
}
# Doctor: a results tree holding the damaged container is repaired in one
# pass, and a second pass finds it clean.
mkdir -p "$SMOKE_DIR/doc/corpus"
cp "$SMOKE_DIR/flipped.rlt.damaged" "$SMOKE_DIR/doc/corpus/flipped_small.rlt"
RLR_RESULTS_DIR="$SMOKE_DIR/doc" "$RLR" doctor > "$SMOKE_DIR/doctor.txt"
grep -q "1 repaired" "$SMOKE_DIR/doctor.txt" || {
    echo "ci.sh: doctor did not repair the damaged container" >&2; exit 1;
}
RLR_RESULTS_DIR="$SMOKE_DIR/doc" "$RLR" doctor | grep -q "is clean" || {
    echo "ci.sh: doctor left the tree dirty after repairing it" >&2; exit 1;
}

echo "==> kill-resume smoke test"
# SIGKILL a sweep mid-flight (no clean shutdown at all), run doctor over
# the survivors, resume against the same checkpoint directory: the output
# must be byte-identical to the uninterrupted run. If the machine is fast
# enough that the sweep finishes before the kill lands, the check still
# holds (resume then just replays complete checkpoints).
RLR_RESULTS_DIR="$SMOKE_DIR/kill" "$RLR" compare $COMPARE \
    > /dev/null 2>&1 &
KILL_PID=$!
sleep 0.4
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
RLR_RESULTS_DIR="$SMOKE_DIR/kill" "$RLR" doctor > /dev/null
RLR_RESULTS_DIR="$SMOKE_DIR/kill" "$RLR" compare $COMPARE \
    > "$SMOKE_DIR/kill_resumed.txt" 2>/dev/null
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/kill_resumed.txt" || {
    echo "ci.sh: resume after SIGKILL diverged from the uninterrupted run" >&2
    exit 1
}

echo "==> event-timing CLI smoke test"
# The --timing selector must reach the simulator (mode echoed in the
# report) and event-mode runs must be bit-reproducible end to end.
"$RLR" run 429.mcf --instructions 200000 --warmup 50000 --timing event \
    > "$SMOKE_DIR/event1.txt"
grep -q "timing       event" "$SMOKE_DIR/event1.txt" || {
    echo "ci.sh: --timing event did not select the event core" >&2; exit 1;
}
"$RLR" run 429.mcf --instructions 200000 --warmup 50000 --timing event \
    > "$SMOKE_DIR/event2.txt"
diff "$SMOKE_DIR/event1.txt" "$SMOKE_DIR/event2.txt" || {
    echo "ci.sh: event-mode run is not deterministic" >&2; exit 1;
}

echo "==> trace container smoke test"
# A captured legacy trace converted to the compressed container must
# verify, and converting it back must reproduce the legacy file
# byte-for-byte. Also checks the committed golden fixture still verifies.
"$RLR" capture 429.mcf --out "$SMOKE_DIR/mcf.trace" --records 4096 \
    > /dev/null 2>&1
"$RLR" trace convert "$SMOKE_DIR/mcf.trace" "$SMOKE_DIR/mcf.rlt" > /dev/null
"$RLR" trace verify "$SMOKE_DIR/mcf.rlt" || {
    echo "ci.sh: converted container failed verification" >&2; exit 1;
}
"$RLR" trace convert "$SMOKE_DIR/mcf.rlt" "$SMOKE_DIR/mcf.back.trace" > /dev/null
cmp "$SMOKE_DIR/mcf.trace" "$SMOKE_DIR/mcf.back.trace" || {
    echo "ci.sh: legacy -> container -> legacy round-trip is not byte-identical" >&2
    exit 1
}
"$RLR" trace verify crates/trace-io/tests/data/golden_429mcf.rlt || {
    echo "ci.sh: committed golden fixture failed verification" >&2; exit 1;
}

echo "==> object-cache walls"
# The serving-tier suite: fast-vs-reference differential wall (hit bytes,
# evictions, expirations exact per policy), the traffic property suite
# (Zipf exponent, flash-crowd share, size/TTL bounds, seed determinism),
# and the sweep determinism wall (serial vs parallel, killed-then-resumed
# via the checkpoint seam, torn stores, flipped cells). All ran in the
# workspace pass; named runs make the owning gate report regressions.
cargo test -q --offline -p objcache --test differential
cargo test -q --offline -p workloads --test object_traffic
cargo test -q --offline -p experiments --test objcache_determinism

echo "==> object-cache CLI smoke test"
# The serving-tier comparison on a short Zipf + flash-crowd trace: all
# four roster policies report, the derived rule beats plain LRU on
# miss-byte ratio (the acceptance headline), and a re-run against the
# same checkpoint directory reproduces the table byte-for-byte from
# cached cells.
OBJ="objcache compare --requests 40000 --capacity-mib 64 --jobs 2"
RLR_RESULTS_DIR="$SMOKE_DIR/obj" "$RLR" $OBJ > "$SMOKE_DIR/obj.txt" 2>/dev/null
for policy in LRU SLRU GDSF RLR-derived; do
    grep -q "$policy" "$SMOKE_DIR/obj.txt" || {
        echo "ci.sh: objcache compare is missing the $policy row" >&2; exit 1;
    }
done
grep -q "derived-RLR beats LRU" "$SMOKE_DIR/obj.txt" || {
    echo "ci.sh: derived rule no longer beats plain LRU on the smoke trace" >&2
    exit 1
}
RLR_RESULTS_DIR="$SMOKE_DIR/obj" "$RLR" $OBJ > "$SMOKE_DIR/obj2.txt" 2>/dev/null
diff "$SMOKE_DIR/obj.txt" "$SMOKE_DIR/obj2.txt" || {
    echo "ci.sh: checkpointed objcache compare re-run diverged" >&2; exit 1;
}

echo "==> multi-tenant CLI smoke test"
# The 3-tenant serving-tier comparison on the pinned default mix: all
# three isolation modes report, the learned table beats shared sharing on
# weighted demand miss rate (the acceptance headline), and a re-run
# against the same checkpoint directory reproduces the table byte-for-byte
# from cached cells.
TEN="tenancy compare --accesses 60000 --jobs 2"
RLR_RESULTS_DIR="$SMOKE_DIR/ten" "$RLR" $TEN > "$SMOKE_DIR/ten.txt" 2>/dev/null
for mode in shared way-partition learned-priority; do
    grep -q "$mode" "$SMOKE_DIR/ten.txt" || {
        echo "ci.sh: tenancy compare is missing the $mode rows" >&2; exit 1;
    }
done
grep -q "learned-priority beats shared" "$SMOKE_DIR/ten.txt" || {
    echo "ci.sh: learned table no longer beats shared on the default mix" >&2
    exit 1
}
RLR_RESULTS_DIR="$SMOKE_DIR/ten" "$RLR" $TEN > "$SMOKE_DIR/ten2.txt" 2>/dev/null
diff "$SMOKE_DIR/ten.txt" "$SMOKE_DIR/ten2.txt" || {
    echo "ci.sh: checkpointed tenancy compare re-run diverged" >&2; exit 1;
}

echo "==> perf-over-time report"
# ci_smoke just wrote results/bench/ci_smoke.json; record it into the
# bench history and render the trend table so regressions are visible
# run-over-run.
"$RLR" perf-report --bench ci_smoke --record ci
# A second snapshot under its own label: the ci_smoke record now carries
# timing/{analytic,event} rows, so the event core's cost is tracked
# run-over-run in results/bench/history.jsonl alongside the hot path.
"$RLR" perf-report --bench ci_smoke --record timing-event

echo "==> ci.sh: all gates passed"
