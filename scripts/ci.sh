#!/usr/bin/env sh
# Hermetic CI gate: the whole workspace must build, test, and compile its
# bench targets with zero network/registry access (every dependency is
# in-tree). Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo bench --no-run --offline"
cargo bench --no-run --offline --workspace

echo "==> ci.sh: all gates passed"
