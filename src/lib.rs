//! # rlr-repro
//!
//! A full reproduction of *"Designing a Cost-Effective Cache Replacement
//! Policy using Machine Learning"* (Sethumurugan, Yin, Sartori — HPCA
//! 2021): the RLR replacement policy, the offline RL pipeline that derived
//! it, a ChampSim-style simulation substrate, every baseline policy the
//! paper compares against, and a harness regenerating each of its tables
//! and figures.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`rlr`] — the paper's contribution: the RLR policy.
//! * [`cache_sim`] — cache hierarchy, prefetchers, timing model, drivers.
//! * [`workloads`] — synthetic SPEC CPU 2006 / CloudSuite analogues.
//! * [`policies`] — LRU/DRRIP/SHiP/SHiP++/Hawkeye/KPC-R/PDP/EVA/Belady.
//! * [`rl`] — MLP, DQN agent, feature encoder, heat map, hill climbing.
//! * [`experiments`] — per-figure/table experiment functions.
//!
//! ```
//! use rlr_repro::prelude::*;
//!
//! let config = SystemConfig::paper_single_core();
//! let mut system = SingleCoreSystem::new(&config, Box::new(RlrPolicy::optimized(&config.llc)));
//! let stats = system.run(spec2006("450.soplex").unwrap().stream(), 50_000);
//! assert!(stats.ipc() > 0.0);
//! ```

pub use cache_sim;
pub use experiments;
pub use policies;
pub use rl;
pub use rlr;
pub use workloads;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use cache_sim::{
        Access, AccessKind, CacheConfig, MultiCoreSystem, ReplacementPolicy, RunStats,
        SingleCoreSystem, SystemConfig, TrueLru,
    };
    pub use experiments::{PolicyKind, Scale, Table};
    pub use policies::{Belady, Drrip, Hawkeye, KpcR, Ship, ShipPp};
    pub use rl::{Agent, AgentConfig, FeatureSet, Trainer};
    pub use rlr::{RlrConfig, RlrPolicy};
    pub use workloads::{cloudsuite, spec2006, Recipe, Workload};
}
